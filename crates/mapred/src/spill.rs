//! Out-of-core shuffle support: spill files, pair codecs, and the
//! external k-way merge.
//!
//! When a job carries a memory budget (see
//! [`crate::MapReduceJob::memory_budget`]), the shuffle's regroup step
//! stops concatenating map outputs into one giant in-memory partition.
//! Instead, whenever a partition's buffered pairs exceed the budget, the
//! buffer is stably sorted by key and written to a local *spill run* — a
//! length-prefixed record file under a per-job temp directory. The reduce
//! task then replays the partition as an external k-way merge over its
//! runs, which reproduces **bit-identical** output to the in-memory
//! sorted path: runs are consecutive chunks of the map-order
//! concatenation, each stably sorted, and the merge breaks key ties by
//! run index — exactly the stable sort of the whole concatenation.
//!
//! Because spill files hold raw bytes, the job needs a [`SpillCodec`]
//! telling it how to encode and decode one `(K, V)` pair. Primitive and
//! common composite types get one for free through [`SpillEncode`];
//! domain types plug in an explicit codec via
//! [`crate::MapReduceJob::memory_budget_with`] without `mapred` needing
//! to know their layout.

use crate::chaos::{ChaosPlan, IoFaultPlan};
use crate::commit::{self, CommitError};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Types that know how to serialize themselves into a spill file.
///
/// The format is private to the engine (little-endian, length-prefixed
/// where needed) and only has to round-trip within one process — it is
/// not an interchange format.
pub trait SpillEncode: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it.
    /// Returns `None` on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

macro_rules! spill_encode_int {
    ($($t:ty),*) => {$(
        impl SpillEncode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let (head, rest) = input.split_at_checked(std::mem::size_of::<$t>())?;
                *input = rest;
                Some(<$t>::from_le_bytes(head.try_into().ok()?))
            }
        }
    )*};
}

spill_encode_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl SpillEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input).map(|n| n as usize)
    }
}

impl SpillEncode for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u32::decode(input).map(f32::from_bits)
    }
}

impl SpillEncode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input).map(f64::from_bits)
    }
}

impl SpillEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let (head, rest) = input.split_at_checked(len)?;
        *input = rest;
        String::from_utf8(head.to_vec()).ok()
    }
}

impl<T: SpillEncode> SpillEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let mut items = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

impl<A: SpillEncode, B: SpillEncode> SpillEncode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

type EncodeFn<K, V> = Arc<dyn Fn(&K, &V, &mut Vec<u8>) + Send + Sync>;
type DecodeFn<K, V> = Arc<dyn Fn(&mut &[u8]) -> Option<(K, V)> + Send + Sync>;

/// How to serialize one intermediate `(K, V)` pair into a spill file and
/// back. Closure-based so drivers can spill domain types the engine has
/// never heard of (no trait impl on foreign types required).
pub struct SpillCodec<K, V> {
    encode: EncodeFn<K, V>,
    decode: DecodeFn<K, V>,
}

impl<K, V> Clone for SpillCodec<K, V> {
    fn clone(&self) -> Self {
        Self {
            encode: Arc::clone(&self.encode),
            decode: Arc::clone(&self.decode),
        }
    }
}

impl<K, V> std::fmt::Debug for SpillCodec<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SpillCodec")
    }
}

impl<K, V> SpillCodec<K, V> {
    /// A codec from explicit encode/decode closures.
    pub fn new(
        encode: impl Fn(&K, &V, &mut Vec<u8>) + Send + Sync + 'static,
        decode: impl Fn(&mut &[u8]) -> Option<(K, V)> + Send + Sync + 'static,
    ) -> Self {
        Self {
            encode: Arc::new(encode),
            decode: Arc::new(decode),
        }
    }

    /// Encodes one pair, appending to `out`.
    pub fn encode(&self, key: &K, value: &V, out: &mut Vec<u8>) {
        (self.encode)(key, value, out);
    }

    /// Decodes one pair from the front of `input`, advancing it.
    pub fn decode(&self, input: &mut &[u8]) -> Option<(K, V)> {
        (self.decode)(input)
    }
}

impl<K: SpillEncode, V: SpillEncode> SpillCodec<K, V> {
    /// The derived codec for pair types that implement [`SpillEncode`].
    pub fn of() -> Self {
        Self::new(
            |k: &K, v: &V, out: &mut Vec<u8>| {
                k.encode(out);
                v.encode(out);
            },
            |input: &mut &[u8]| Some((K::decode(input)?, V::decode(input)?)),
        )
    }
}

static NEXT_SPILL_DIR: AtomicU64 = AtomicU64::new(0);

/// Maps an arbitrary tag (job or run name) onto a short filesystem-safe
/// slug.
pub(crate) fn sanitize(tag: &str) -> String {
    tag.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(32)
        .collect()
}

/// A per-job temporary directory holding spill runs, removed (with its
/// contents) when the last handle drops — usually at the end of
/// `run()`, or earlier if the job aborts, so failed attempts never leak
/// disk.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    next_file: AtomicU64,
    /// Payload bytes committed here and still charged against the
    /// virtual disk; released on drop.
    charged: AtomicU64,
    io: Option<IoFaultPlan>,
}

impl SpillDir {
    /// Creates a fresh unique directory under the OS temp dir.
    pub fn create(job: &str) -> Result<Self, String> {
        Self::create_in(&std::env::temp_dir(), job, None, None)
    }

    /// Creates a fresh spill directory under `root`, namespaced by an
    /// optional per-run id (so concurrent runs sharing one tmpdir, or a
    /// run directory's `spill/` root, never collide) and tied to the
    /// virtual disk of `io` when storage faults are active.
    pub fn create_in(
        root: &Path,
        job: &str,
        run_id: Option<&str>,
        io: Option<IoFaultPlan>,
    ) -> Result<Self, String> {
        let tag = sanitize(job);
        let run = run_id.map(sanitize).filter(|r| !r.is_empty());
        let name = match run {
            Some(run) => format!(
                "gepeto-spill-{run}-{tag}-{}-{}",
                std::process::id(),
                NEXT_SPILL_DIR.fetch_add(1, Ordering::Relaxed),
            ),
            None => format!(
                "gepeto-spill-{tag}-{}-{}",
                std::process::id(),
                NEXT_SPILL_DIR.fetch_add(1, Ordering::Relaxed),
            ),
        };
        let path = root.join(name);
        fs::create_dir_all(&path).map_err(|e| format!("create spill dir {path:?}: {e}"))?;
        Ok(Self {
            path,
            next_file: AtomicU64::new(0),
            charged: AtomicU64::new(0),
            io,
        })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh unique file path inside the directory.
    pub fn next_file(&self, prefix: &str) -> PathBuf {
        let n = self.next_file.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("{prefix}-{n}.spill"))
    }

    fn note_commit(&self, payload_bytes: u64) {
        self.charged.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    fn note_release(&self, payload_bytes: u64) {
        let _ = self
            .charged
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(payload_bytes))
            });
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if let Some(io) = &self.io {
            io.release(self.charged.load(Ordering::Relaxed));
        }
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// One sorted run on disk: a sequence of `u32`-length-prefixed encoded
/// `(K, V)` records in ascending key order, committed atomically with a
/// checksum footer (see [`crate::commit`]).
#[derive(Debug, Clone)]
pub struct SpillRun {
    /// File holding the run (inside its job's [`SpillDir`]).
    pub path: PathBuf,
    /// Number of pairs in the run.
    pub records: u64,
    /// Encoded size of the run in bytes (record payloads + prefixes;
    /// excludes the commit footer).
    pub bytes: u64,
    /// FNV-1a checksum of the record payload, as committed.
    pub checksum: u64,
}

/// Encodes an already-sorted pair slice into one length-prefixed record
/// stream.
fn encode_run<K, V>(codec: &SpillCodec<K, V>, pairs: &[(K, V)]) -> Result<Vec<u8>, String> {
    let mut payload = Vec::with_capacity(pairs.len() * 16);
    let mut buf = Vec::with_capacity(256);
    for (k, v) in pairs {
        buf.clear();
        codec.encode(k, v, &mut buf);
        let len = u32::try_from(buf.len()).map_err(|_| "spill record over 4 GiB".to_string())?;
        payload.extend_from_slice(&len.to_le_bytes());
        payload.extend_from_slice(&buf);
    }
    Ok(payload)
}

/// Writes an already-sorted pair slice as one spill run through the
/// atomic commit protocol, without fault injection.
pub fn write_run<K, V>(
    codec: &SpillCodec<K, V>,
    path: PathBuf,
    pairs: &[(K, V)],
) -> Result<SpillRun, String> {
    write_run_committed(codec, path, pairs, 0, &ChaosPlan::none())
        .map(|(run, _)| run)
        .map_err(|e| e.to_string())
}

/// Writes an already-sorted pair slice as one committed spill run,
/// injecting any storage faults the chaos plan scripts for this path at
/// retry number `attempt`.
///
/// # Errors
/// [`CommitError::DiskFull`] / [`CommitError::Io`] from the commit;
/// injected torn writes and bit-rot do *not* error here — they are
/// materialized into the file for [`verify_run`] to catch.
#[allow(clippy::type_complexity)]
pub fn write_run_committed<K, V>(
    codec: &SpillCodec<K, V>,
    path: PathBuf,
    pairs: &[(K, V)],
    attempt: u32,
    chaos: &ChaosPlan,
) -> Result<(SpillRun, commit::CommitReceipt), CommitError> {
    let payload = encode_run(codec, pairs).map_err(CommitError::Io)?;
    let site = path.display().to_string();
    let receipt = commit::commit_bytes(&path, &payload, &site, attempt, chaos)?;
    Ok((
        SpillRun {
            path,
            records: pairs.len() as u64,
            bytes: receipt.payload_bytes,
            checksum: receipt.checksum,
        },
        receipt,
    ))
}

/// Verifies a committed spill run: structural always (footer intact,
/// length and checksum match what was sealed), plus a deep payload
/// re-hash when `deep` is set (bit-rot defense while storage faults are
/// active).
///
/// # Errors
/// [`CommitError::Torn`] / [`CommitError::Corrupt`] / [`CommitError::Io`].
pub fn verify_run(run: &SpillRun, deep: bool) -> Result<(), CommitError> {
    let receipt = commit::verify_structure(&run.path)?;
    if receipt.payload_bytes != run.bytes || receipt.checksum != run.checksum {
        return Err(CommitError::Corrupt(format!(
            "{}: footer ({} B, {:016x}) disagrees with sealed run ({} B, {:016x})",
            run.path.display(),
            receipt.payload_bytes,
            receipt.checksum,
            run.bytes,
            run.checksum,
        )));
    }
    if deep {
        commit::verify_deep(&run.path)?;
    }
    Ok(())
}

/// Moves a failed-verification run aside as `<path>.quarantined` and
/// releases its virtual-disk charge.
pub fn quarantine_run(run: &SpillRun, dir: &SpillDir, chaos: &ChaosPlan) -> Option<PathBuf> {
    dir.note_release(run.bytes);
    commit::quarantine(&run.path, chaos)
}

/// Tallies from sealing one verified spill run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealStats {
    /// Injected transient EIOs absorbed by the commit retry loop.
    pub io_retries: u64,
    /// Torn writes caught by seal-time verification.
    pub torn_detected: u64,
    /// Runs quarantined (torn or corrupt) and rewritten.
    pub quarantined: u64,
    /// Virtual milliseconds stalled on storage (EIO backoff and
    /// slow-disk penalties) across every write attempt.
    pub stall_ms: u64,
}

/// Rewrites a torn/corrupt run absorbs per seal before giving up.
const MAX_SEAL_REBUILDS: u32 = 4;

/// Writes, verifies, and (if damaged) quarantines-and-rewrites one
/// spill run until it sits intact on disk — the buffer is still in
/// memory, so a bad write costs a rewrite, never the job. Deep
/// verification is enabled whenever storage faults are active.
///
/// # Errors
/// [`CommitError::DiskFull`] / [`CommitError::Io`] when the disk is out
/// of space, real IO fails, or rebuilds exceed [`MAX_SEAL_REBUILDS`].
pub fn seal_run<K, V>(
    codec: &SpillCodec<K, V>,
    dir: &SpillDir,
    prefix: &str,
    pairs: &[(K, V)],
    chaos: &ChaosPlan,
) -> Result<(SpillRun, SealStats), CommitError> {
    let (run, stats) = seal_at(codec, dir.next_file(prefix), pairs, chaos)?;
    dir.note_commit(run.bytes);
    Ok((run, stats))
}

/// Like [`seal_run`], at an explicit path outside any [`SpillDir`] —
/// used for durable reduce-partition artifacts in a run directory. Any
/// stale or damaged file already at the path (e.g. a partial write from
/// a crashed run) is quarantined first, which also releases its
/// virtual-disk charge so overwrites never leak accounting.
pub fn seal_run_at<K, V>(
    codec: &SpillCodec<K, V>,
    path: &Path,
    pairs: &[(K, V)],
    chaos: &ChaosPlan,
) -> Result<(SpillRun, SealStats), CommitError> {
    if path.exists() {
        commit::quarantine(path, chaos);
    }
    seal_at(codec, path.to_path_buf(), pairs, chaos)
}

fn seal_at<K, V>(
    codec: &SpillCodec<K, V>,
    path: PathBuf,
    pairs: &[(K, V)],
    chaos: &ChaosPlan,
) -> Result<(SpillRun, SealStats), CommitError> {
    let deep = chaos.io_active();
    let mut stats = SealStats::default();
    for attempt in 0..=MAX_SEAL_REBUILDS {
        let (run, receipt) = write_run_committed(codec, path.clone(), pairs, attempt, chaos)?;
        stats.io_retries += receipt.io_retries;
        stats.stall_ms += receipt.stall_ms;
        match verify_run(&run, deep) {
            Ok(()) => return Ok((run, stats)),
            Err(CommitError::Torn(_)) => {
                stats.torn_detected += 1;
                stats.quarantined += 1;
                commit::quarantine(&run.path, chaos);
            }
            Err(CommitError::Corrupt(_)) => {
                stats.quarantined += 1;
                commit::quarantine(&run.path, chaos);
            }
            Err(e) => return Err(e),
        }
    }
    Err(CommitError::Io(format!(
        "{}: run still damaged after {MAX_SEAL_REBUILDS} rewrites",
        path.display()
    )))
}

/// Reloads a committed artifact written by [`seal_run_at`], verifying
/// structure, the expected checksum, and (always — this is a verifying
/// read standing in for a full recompute) the deep payload hash before
/// decoding. Pairs come back in their sealed order.
pub fn load_artifact<K, V>(
    codec: &SpillCodec<K, V>,
    path: &Path,
    records: u64,
    checksum: u64,
) -> Result<Vec<(K, V)>, CommitError> {
    let receipt = commit::verify_structure(path)?;
    if receipt.checksum != checksum {
        return Err(CommitError::Corrupt(format!(
            "{}: footer checksum {:016x} disagrees with journal {:016x}",
            path.display(),
            receipt.checksum,
            checksum,
        )));
    }
    commit::verify_deep(path)?;
    let run = SpillRun {
        path: path.to_path_buf(),
        records,
        bytes: receipt.payload_bytes,
        checksum,
    };
    let mut reader = SpillRunReader::open(&run, codec.clone()).map_err(CommitError::Io)?;
    let mut out = Vec::with_capacity(records as usize);
    while let Some((k, v, _)) = reader.next_pair().map_err(CommitError::Io)? {
        out.push((k, v));
    }
    Ok(out)
}

/// Streaming reader over one spill run, yielding pairs in file order
/// with their encoded length (for downstream memory accounting).
pub struct SpillRunReader<K, V> {
    reader: BufReader<File>,
    remaining: u64,
    codec: SpillCodec<K, V>,
    path: PathBuf,
    buf: Vec<u8>,
}

impl<K, V> SpillRunReader<K, V> {
    /// Opens `run` for streaming decode.
    pub fn open(run: &SpillRun, codec: SpillCodec<K, V>) -> Result<Self, String> {
        let file =
            File::open(&run.path).map_err(|e| format!("open spill run {:?}: {e}", run.path))?;
        Ok(Self {
            reader: BufReader::new(file),
            remaining: run.records,
            codec,
            path: run.path.clone(),
            buf: Vec::with_capacity(256),
        })
    }

    /// Decodes the next pair, or `Ok(None)` at end of run.
    #[allow(clippy::type_complexity)]
    pub fn next_pair(&mut self) -> Result<Option<(K, V, usize)>, String> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        self.reader
            .read_exact(&mut len_bytes)
            .map_err(|e| format!("read spill run {:?}: {e}", self.path))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        self.buf.resize(len, 0);
        self.reader
            .read_exact(&mut self.buf)
            .map_err(|e| format!("read spill run {:?}: {e}", self.path))?;
        let mut slice = &self.buf[..];
        let (k, v) = self
            .codec
            .decode(&mut slice)
            .filter(|_| slice.is_empty())
            .ok_or_else(|| format!("corrupt spill record in {:?}", self.path))?;
        self.remaining -= 1;
        Ok(Some((k, v, 4 + len)))
    }
}

/// External k-way merge over sorted spill runs.
///
/// Pops the globally smallest key next; ties between runs break toward
/// the lower run index. Since run `i` holds an earlier contiguous chunk
/// of the map-order concatenation than run `i + 1`, and each run is
/// stably sorted, the merged stream is exactly the stable sort of the
/// whole concatenation — bit-identical to the in-memory path.
pub struct SpillMerge<K, V> {
    readers: Vec<SpillRunReader<K, V>>,
    /// Head pair of each run, ordered by (key, run index). With a
    /// handful of runs a linear scan beats a heap and keeps the
    /// tie-break rule explicit.
    heads: Vec<Option<(K, V, usize)>>,
}

impl<K: Ord, V> SpillMerge<K, V> {
    /// Opens every run and primes the merge.
    pub fn open(runs: &[SpillRun], codec: &SpillCodec<K, V>) -> Result<Self, String> {
        let mut readers = Vec::with_capacity(runs.len());
        let mut heads = Vec::with_capacity(runs.len());
        for run in runs {
            let mut reader = SpillRunReader::open(run, codec.clone())?;
            heads.push(reader.next_pair()?);
            readers.push(reader);
        }
        Ok(Self { readers, heads })
    }

    /// The next pair in merged order, with its encoded length.
    #[allow(clippy::type_complexity)]
    pub fn next_pair(&mut self) -> Result<Option<(K, V, usize)>, String> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some((k, _, _)) = head {
                match best {
                    // Strict `<`: an equal key in a later run never
                    // displaces the earlier run's head (stability).
                    Some(b) if k < &self.heads[b].as_ref().unwrap().0 => best = Some(i),
                    None => best = Some(i),
                    _ => {}
                }
            }
        }
        let Some(i) = best else { return Ok(None) };
        let next = self.readers[i].next_pair()?;
        Ok(std::mem::replace(&mut self.heads[i], next))
    }
}

/// A reduce group whose value list outgrew the memory budget: the
/// overflow goes to its own spill file and is read back only for the
/// duration of the group's `reduce` call.
pub struct GroupSpill<K, V> {
    writer: BufWriter<File>,
    path: PathBuf,
    codec: SpillCodec<K, V>,
    records: u64,
    buf: Vec<u8>,
}

impl<K, V> GroupSpill<K, V> {
    /// Creates the overflow file for one group.
    pub fn create(path: PathBuf, codec: SpillCodec<K, V>) -> Result<Self, String> {
        let file = File::create(&path).map_err(|e| format!("create group spill {path:?}: {e}"))?;
        Ok(Self {
            writer: BufWriter::new(file),
            path,
            codec,
            records: 0,
            buf: Vec::with_capacity(256),
        })
    }

    /// Appends one overflow value (keyed for the shared codec).
    pub fn push(&mut self, key: &K, value: &V) -> Result<(), String> {
        self.buf.clear();
        self.codec.encode(key, value, &mut self.buf);
        let len =
            u32::try_from(self.buf.len()).map_err(|_| "spill record over 4 GiB".to_string())?;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.writer.write_all(&self.buf))
            .map_err(|e| format!("write group spill {:?}: {e}", self.path))?;
        self.records += 1;
        Ok(())
    }

    /// Finishes the file and reads every overflow value back in write
    /// order, deleting the file afterwards.
    pub fn into_values(self) -> Result<Vec<V>, String> {
        let GroupSpill {
            writer,
            path,
            codec,
            records,
            ..
        } = self;
        writer
            .into_inner()
            .map_err(|e| format!("flush group spill {path:?}: {e}"))?;
        let run = SpillRun {
            path: path.clone(),
            records,
            bytes: 0,
            checksum: 0,
        };
        let mut reader = SpillRunReader::open(&run, codec)?;
        let mut values = Vec::with_capacity(records as usize);
        while let Some((_, v, _)) = reader.next_pair()? {
            values.push(v);
        }
        drop(reader);
        let _ = fs::remove_file(&path);
        Ok(values)
    }
}

/// The driver-facing spill configuration carried by a job builder: the
/// pair codec plus an optional explicit byte budget (the job config key
/// `mapred.memory.budget` supplies the budget when this is `None`).
pub struct SpillSpec<K, V> {
    /// Pair codec for spill files.
    pub codec: SpillCodec<K, V>,
    /// Per-partition in-memory byte budget, if set on the builder.
    pub budget: Option<usize>,
}

impl<K, V> Clone for SpillSpec<K, V> {
    fn clone(&self) -> Self {
        Self {
            codec: self.codec.clone(),
            budget: self.budget,
        }
    }
}

/// A reduce partition that overflowed the memory budget during the
/// shuffle: its pairs live in sorted runs on disk, kept alive by the
/// shared [`SpillDir`] handle.
pub struct SpilledPartition<K, V> {
    /// Sorted runs in map-concatenation order.
    pub runs: Vec<SpillRun>,
    /// Codec all runs were written with.
    pub codec: SpillCodec<K, V>,
    /// Keeps the backing directory alive until the partition is reduced.
    pub dir: Arc<SpillDir>,
}

impl<K, V> SpilledPartition<K, V> {
    /// Total pairs across all runs.
    pub fn records(&self) -> u64 {
        self.runs.iter().map(|r| r.records).sum()
    }
}

/// One reduce partition's input: fully in memory, or spilled to runs.
pub enum PartitionInput<K, V> {
    /// The partition fit the budget (or no budget was set).
    Memory(Vec<(K, V)>),
    /// The partition overflowed and lives on disk.
    Spilled(SpilledPartition<K, V>),
}

impl<K, V> PartitionInput<K, V> {
    /// Number of pairs in the partition.
    pub fn records(&self) -> u64 {
        match self {
            PartitionInput::Memory(pairs) => pairs.len() as u64,
            PartitionInput::Spilled(sp) => sp.records(),
        }
    }

    /// Unwraps the in-memory pairs of a never-spilled partition.
    ///
    /// # Panics
    /// If the partition was spilled (map-only jobs never spill).
    pub fn into_memory(self) -> Vec<(K, V)> {
        match self {
            PartitionInput::Memory(pairs) => pairs,
            PartitionInput::Spilled(_) => unreachable!("map-only partitions never spill"),
        }
    }
}

/// Streams the merged runs of a spilled partition back as `(key,
/// values)` groups, spilling any single group whose values outgrow
/// `group_budget` bytes to its own overflow file. Calls `emit(key,
/// values, spilled)` once per group, in ascending key order, where
/// `spilled` reports whether that group overflowed.
#[allow(clippy::type_complexity)]
pub fn merge_groups<K: Ord, V>(
    partition: &SpilledPartition<K, V>,
    group_budget: usize,
    mut emit: impl FnMut(K, Vec<V>, bool) -> Result<(), String>,
) -> Result<(), String> {
    let mut merge = SpillMerge::open(&partition.runs, &partition.codec)?;
    let mut current: Option<(K, Vec<V>)> = None;
    let mut group_bytes = 0usize;
    let mut overflow: Option<GroupSpill<K, V>> = None;
    while let Some((k, v, len)) = merge.next_pair()? {
        if current.as_ref().is_some_and(|(ck, _)| *ck != k) {
            let (key, mut values) = current.take().unwrap();
            let spilled = overflow.is_some();
            if let Some(file) = overflow.take() {
                values.extend(file.into_values()?);
            }
            emit(key, values, spilled)?;
            group_bytes = 0;
        }
        match &mut current {
            None => {
                current = Some((k, vec![v]));
                group_bytes = len;
            }
            Some((ck, values)) => {
                if overflow.is_none() && group_bytes + len > group_budget {
                    overflow = Some(GroupSpill::create(
                        partition.dir.next_file("group"),
                        partition.codec.clone(),
                    )?);
                }
                match &mut overflow {
                    Some(file) => file.push(ck, &v)?,
                    None => {
                        values.push(v);
                        group_bytes += len;
                    }
                }
            }
        }
    }
    if let Some((key, mut values)) = current.take() {
        let spilled = overflow.is_some();
        if let Some(file) = overflow.take() {
            values.extend(file.into_values()?);
        }
        emit(key, values, spilled)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> SpillCodec<String, u64> {
        SpillCodec::of()
    }

    fn dir() -> Arc<SpillDir> {
        Arc::new(SpillDir::create("spill-test").unwrap())
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        42u32.encode(&mut buf);
        (-7i64).encode(&mut buf);
        1.5f64.encode(&mut buf);
        "héllo".to_string().encode(&mut buf);
        vec![1u8, 2, 3].encode(&mut buf);
        (9usize, 2.25f32).encode(&mut buf);
        let mut s = &buf[..];
        assert_eq!(u32::decode(&mut s), Some(42));
        assert_eq!(i64::decode(&mut s), Some(-7));
        assert_eq!(f64::decode(&mut s), Some(1.5));
        assert_eq!(String::decode(&mut s), Some("héllo".to_string()));
        assert_eq!(Vec::<u8>::decode(&mut s), Some(vec![1, 2, 3]));
        assert_eq!(<(usize, f32)>::decode(&mut s), Some((9, 2.25)));
        assert!(s.is_empty());
        assert_eq!(u32::decode(&mut s), None, "truncated input must be None");
    }

    #[test]
    fn run_round_trips_in_order() {
        let d = dir();
        let pairs: Vec<(String, u64)> = (0..100).map(|i| (format!("k{i:03}"), i)).collect();
        let run = write_run(&codec(), d.next_file("t"), &pairs).unwrap();
        assert_eq!(run.records, 100);
        assert!(run.bytes > 0);
        let mut reader = SpillRunReader::open(&run, codec()).unwrap();
        let mut got = Vec::new();
        while let Some((k, v, len)) = reader.next_pair().unwrap() {
            assert!(len > 4);
            got.push((k, v));
        }
        assert_eq!(got, pairs);
    }

    #[test]
    fn merge_matches_stable_sort_of_concatenation() {
        let d = dir();
        // Three runs that are consecutive chunks of one concatenation,
        // with duplicate keys across runs carrying distinct values so a
        // stability violation is visible.
        let chunks: Vec<Vec<(String, u64)>> = vec![
            vec![("b".into(), 0), ("a".into(), 1), ("b".into(), 2)],
            vec![("a".into(), 3), ("c".into(), 4)],
            vec![("b".into(), 5), ("a".into(), 6)],
        ];
        let mut expected: Vec<(String, u64)> = chunks.concat();
        expected.sort_by(|a, b| a.0.cmp(&b.0));

        let mut runs = Vec::new();
        for mut chunk in chunks {
            chunk.sort_by(|a, b| a.0.cmp(&b.0));
            runs.push(write_run(&codec(), d.next_file("m"), &chunk).unwrap());
        }
        let mut merge = SpillMerge::open(&runs, &codec()).unwrap();
        let mut got = Vec::new();
        while let Some((k, v, _)) = merge.next_pair().unwrap() {
            got.push((k, v));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn merge_groups_spills_oversized_group_and_preserves_value_order() {
        let d = dir();
        let mut pairs: Vec<(String, u64)> = (0..50).map(|i| ("big".to_string(), i)).collect();
        pairs.push(("tiny".into(), 99));
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let run = write_run(&codec(), d.next_file("g"), &pairs).unwrap();
        let partition = SpilledPartition {
            runs: vec![run],
            codec: codec(),
            dir: Arc::clone(&d),
        };
        let mut groups = Vec::new();
        // Budget fits ~4 records: the 50-value group must overflow.
        merge_groups(&partition, 64, |k, vs, spilled| {
            groups.push((k, vs, spilled));
            Ok(())
        })
        .unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "big");
        assert_eq!(groups[0].1, (0..50).collect::<Vec<u64>>());
        assert!(groups[0].2, "oversized group must report spilled");
        assert_eq!(groups[1].0, "tiny");
        assert_eq!(groups[1].1, vec![99]);
        assert!(!groups[1].2);
    }

    #[test]
    fn truncated_run_surfaces_an_error_not_a_panic() {
        let d = dir();
        let pairs: Vec<(String, u64)> = (0..10).map(|i| (format!("k{i}"), i)).collect();
        let run = write_run(&codec(), d.next_file("trunc"), &pairs).unwrap();
        // Simulate a crash mid-spill: the file is cut short.
        let data = fs::read(&run.path).unwrap();
        fs::write(&run.path, &data[..data.len() / 2]).unwrap();
        let mut reader = SpillRunReader::open(&run, codec()).unwrap();
        let mut err = None;
        for _ in 0..10 {
            match reader.next_pair() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(err.unwrap().contains("read spill run"));
    }

    #[test]
    fn sealed_run_survives_torn_writes_and_bitrot() {
        use crate::chaos::ChaosPlan;
        let chaos = ChaosPlan::none().io_faults(
            crate::chaos::IoFaultPlan::new(13)
                .eio(0.3)
                .torn(1.0)
                .bitrot(0.5),
        );
        let d = SpillDir::create_in(
            &std::env::temp_dir(),
            "seal-test",
            Some("run7"),
            chaos.io_plan().cloned(),
        )
        .unwrap();
        assert!(d.path().to_string_lossy().contains("run7"));
        let pairs: Vec<(String, u64)> = (0..200).map(|i| (format!("k{i:03}"), i)).collect();
        let (run, stats) = seal_run(&codec(), &d, "run", &pairs, &chaos).unwrap();
        assert!(
            stats.torn_detected >= 1,
            "torn=1.0 must tear the first write"
        );
        assert!(stats.quarantined >= 1);
        verify_run(&run, true).unwrap();
        let mut reader = SpillRunReader::open(&run, codec()).unwrap();
        let mut got = Vec::new();
        while let Some((k, v, _)) = reader.next_pair().unwrap() {
            got.push((k, v));
        }
        assert_eq!(got, pairs, "sealed run is bit-identical to the buffer");
    }

    #[test]
    fn verify_run_flags_post_seal_damage() {
        use crate::chaos::ChaosPlan;
        let d = dir();
        let pairs: Vec<(String, u64)> = (0..20).map(|i| (format!("k{i}"), i)).collect();
        let chaos = ChaosPlan::none();
        let (run, _) = seal_run(&codec(), &d, "v", &pairs, &chaos).unwrap();
        verify_run(&run, true).unwrap();
        // Flip one payload byte at rest: structure passes, deep fails.
        let mut data = fs::read(&run.path).unwrap();
        data[10] ^= 0x01;
        fs::write(&run.path, &data).unwrap();
        verify_run(&run, false).unwrap();
        assert!(matches!(
            verify_run(&run, true),
            Err(CommitError::Corrupt(_))
        ));
        let q = quarantine_run(&run, &d, &chaos).unwrap();
        assert!(q.to_string_lossy().ends_with(".quarantined"));
        assert!(!run.path.exists());
    }

    #[test]
    fn artifact_seals_at_explicit_path_and_reloads() {
        use crate::chaos::ChaosPlan;
        let d = dir();
        let path = d.path().join("wc-p0.part");
        let chaos = ChaosPlan::none();
        let pairs: Vec<(String, u64)> = (0..30).map(|i| (format!("k{i:02}"), i * 3)).collect();
        let (run, _) = seal_run_at(&codec(), &path, &pairs, &chaos).unwrap();
        let got = load_artifact(&codec(), &path, run.records, run.checksum).unwrap();
        assert_eq!(got, pairs);
        // Overwriting replaces the old artifact cleanly.
        let newer: Vec<(String, u64)> = vec![("z".into(), 1)];
        let (run2, _) = seal_run_at(&codec(), &path, &newer, &chaos).unwrap();
        assert_ne!(run2.checksum, run.checksum);
        let got2 = load_artifact(&codec(), &path, run2.records, run2.checksum).unwrap();
        assert_eq!(got2, newer);
        // A stale checksum (journal from a different seal) is rejected.
        assert!(matches!(
            load_artifact(&codec(), &path, run.records, run.checksum),
            Err(CommitError::Corrupt(_))
        ));
    }

    #[test]
    fn spill_dir_cleans_up_on_drop() {
        let d = SpillDir::create("cleanup").unwrap();
        let path = d.path().to_path_buf();
        write_run(&codec(), d.next_file("x"), &[("k".to_string(), 1u64)]).unwrap();
        assert!(path.exists());
        drop(d);
        assert!(!path.exists(), "spill dir must be removed on drop");
    }
}
