//! Hadoop-style job counters: named `u64` accumulators that tasks bump
//! concurrently and the driver reads after the job completes.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Phase names used in failure hashing, error reporting and telemetry
/// labels. Shared constants so the jobtracker, the simulator and the
/// telemetry layer can never drift apart on a typo.
pub mod phase {
    /// The map phase.
    pub const MAP: &str = "map";
    /// The reduce phase.
    pub const REDUCE: &str = "reduce";
    /// The shuffle (map-output regrouping) phase.
    pub const SHUFFLE: &str = "shuffle";
    /// The map-side combine phase.
    pub const COMBINE: &str = "combine";
    /// The reduce-side sort/group phase.
    pub const SORT: &str = "sort";
}

/// Built-in counter names used by the engine itself.
pub mod builtin {
    /// Total intermediate bytes shuffled from mappers to reducers (same
    /// name the telemetry summary surfaces as its shuffle line).
    pub const SHUFFLE_BYTES: &str = gepeto_telemetry::SHUFFLE_BYTES_COUNTER;
    /// Intermediate pairs written out by map tasks after combining —
    /// what Hadoop would spill to local disk for the shuffle.
    pub const SPILLED_RECORDS: &str = "mapred.spilled.records";
    /// Records read by all map tasks.
    pub const MAP_INPUT_RECORDS: &str = "mapred.map.input.records";
    /// Pairs emitted by all map tasks (before combining).
    pub const MAP_OUTPUT_RECORDS: &str = "mapred.map.output.records";
    /// Pairs entering combiners.
    pub const COMBINE_INPUT_RECORDS: &str = "mapred.combine.input.records";
    /// Pairs leaving combiners (what actually shuffles).
    pub const COMBINE_OUTPUT_RECORDS: &str = "mapred.combine.output.records";
    /// Distinct keys presented to reduce calls.
    pub const REDUCE_INPUT_GROUPS: &str = "mapred.reduce.input.groups";
    /// Pairs consumed by all reduce tasks.
    pub const REDUCE_INPUT_RECORDS: &str = "mapred.reduce.input.records";
    /// Pairs emitted by all reduce tasks.
    pub const REDUCE_OUTPUT_RECORDS: &str = "mapred.reduce.output.records";
    /// Task attempts lost to (injected) failures and rescheduled.
    pub const TASK_RETRIES: &str = gepeto_telemetry::TASK_RETRIES_COUNTER;
    /// Completed map tasks re-executed because their node crashed and
    /// took the locally-stored map outputs with it.
    pub const REEXECUTED_MAPS: &str = gepeto_telemetry::REEXECUTED_MAPS_COUNTER;
    /// Chunk reads served by a secondary replica after the preferred one
    /// was dead or failed checksum verification.
    pub const FAILED_OVER_READS: &str = gepeto_telemetry::FAILED_OVER_READS_COUNTER;
    /// Nodes the jobtracker blacklisted after repeated task failures.
    pub const BLACKLISTED_NODES: &str = gepeto_telemetry::BLACKLISTED_NODES_COUNTER;
    /// Point-to-centroid distance evaluations performed by the clustering
    /// kernels (the k-means inner-loop cost driver).
    pub const DISTANCE_EVALS: &str = gepeto_telemetry::DISTANCE_EVALS_COUNTER;
    /// Reduce partitions whose stable sort was skipped because the
    /// reducer declared order-insensitive input (`Reducer::SORTED_INPUT
    /// = false`).
    pub const SORT_SKIPPED: &str = gepeto_telemetry::SORT_SKIPPED_COUNTER;
    /// Shuffle bytes avoided by compressed payload encodings, relative to
    /// the raw representation the job would otherwise ship.
    pub const SHUFFLE_BYTES_SAVED: &str = gepeto_telemetry::SHUFFLE_BYTES_SAVED_COUNTER;
    /// Intermediate bytes actually written to spill runs by
    /// memory-bounded shuffles (encoded size, unlike the estimated
    /// [`SPILLED_RECORDS`] Hadoop mirror above).
    pub const SPILLED_BYTES: &str = gepeto_telemetry::SPILLED_BYTES_COUNTER;
    /// Sorted spill runs written to local disk.
    pub const SPILL_FILES: &str = gepeto_telemetry::SPILL_FILES_COUNTER;
    /// Reduce groups whose value lists overflowed the memory budget and
    /// were staged on disk until their reduce call.
    pub const SPILLED_GROUPS: &str = gepeto_telemetry::SPILLED_GROUPS_COUNTER;
    /// Storage operations retried after a transient injected IO fault
    /// (EIO on write/read, or a rebuilt spill seal).
    pub const IO_RETRIES: &str = gepeto_telemetry::IO_RETRIES_COUNTER;
    /// Torn (partial) writes caught by commit-footer verification.
    pub const TORN_WRITES: &str = gepeto_telemetry::TORN_WRITES_COUNTER;
    /// Corrupt spill runs moved aside to `.quarantined` files instead of
    /// being fed to a merge.
    pub const RUNS_QUARANTINED: &str = gepeto_telemetry::RUNS_QUARANTINED_COUNTER;
    /// Reduce tasks whose output was loaded from a committed artifact on
    /// resume instead of re-executing.
    pub const JOURNAL_REPLAYED: &str = gepeto_telemetry::JOURNAL_REPLAYED_COUNTER;
    /// Virtual milliseconds stalled on storage: EIO retry backoff plus
    /// simulated slow-disk write penalties, accumulated per commit.
    pub const IO_STALL_MS: &str = gepeto_telemetry::IO_STALL_MS_COUNTER;
    /// The configured per-task memory budget in bytes (0 = unbudgeted).
    pub const MEM_BUDGET_BYTES: &str = gepeto_telemetry::MEM_BUDGET_BYTES_COUNTER;
    /// Highest buffered intermediate size the engine's own accounting
    /// observed — the value the spill machinery compares against the
    /// budget (max across tasks and iterations, not a sum).
    pub const MEM_ACCOUNTED_PEAK: &str = gepeto_telemetry::MEM_ACCOUNTED_PEAK_COUNTER;
    /// How far [`MEM_ACCOUNTED_PEAK`] overshot [`MEM_BUDGET_BYTES`]
    /// (0 when the run stayed inside its budget or had none).
    pub const MEM_PEAK_OVER_BUDGET: &str = gepeto_telemetry::MEM_PEAK_OVER_BUDGET_COUNTER;
    /// Tracking-allocator peak live bytes observed over the job's span
    /// (max, not a sum).
    pub const MEM_PEAK_BYTES: &str = gepeto_telemetry::MEM_PEAK_BYTES_COUNTER;
    /// Tracking-allocator bytes allocated over the job's span.
    pub const MEM_ALLOCATED_BYTES: &str = gepeto_telemetry::MEM_ALLOCATED_BYTES_COUNTER;
    /// Tracking-allocator allocation calls over the job's span.
    pub const MEM_ALLOCS: &str = gepeto_telemetry::MEM_ALLOCS_COUNTER;
    /// Absolute error between the estimated buffered size that triggered
    /// each spill and the bytes the sealed run actually wrote.
    pub const SPILL_ESTIMATE_ERROR: &str = gepeto_telemetry::SPILL_ESTIMATE_ERROR_COUNTER;
}

/// Counters that carry a high-water mark rather than a running total:
/// folding them across tasks, iterations or jobs must take the max, not
/// the sum.
pub const MAX_MERGED_COUNTERS: &[&str] = &[
    builtin::MEM_BUDGET_BYTES,
    builtin::MEM_ACCOUNTED_PEAK,
    builtin::MEM_PEAK_OVER_BUDGET,
    builtin::MEM_PEAK_BYTES,
];

/// A concurrent set of named counters. Cloning shares the underlying
/// storage (it is an `Arc` internally), matching how every task of a job
/// reports into the same jobtracker-side counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl Counters {
    /// A fresh, empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut map = self.inner.lock();
        *map.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raises counter `name` to `value` if it is currently lower — the
    /// fold for [`MAX_MERGED_COUNTERS`]-style high-water marks.
    pub fn set_max(&self, name: &str, value: u64) {
        let mut map = self.inner.lock();
        let entry = map.entry(name.to_string()).or_insert(0);
        *entry = (*entry).max(value);
    }

    /// Current value of `name` (0 when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters in name order.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner.lock().clone()
    }

    /// Merges another counter set into this one: high-water marks
    /// ([`MAX_MERGED_COUNTERS`]) fold by max, everything else by
    /// addition.
    pub fn merge(&self, other: &Counters) {
        let other_snapshot = other.snapshot();
        let mut map = self.inner.lock();
        for (k, v) in other_snapshot {
            let max_merged = MAX_MERGED_COUNTERS.contains(&k.as_str());
            let entry = map.entry(k).or_insert(0);
            if max_merged {
                *entry = (*entry).max(v);
            } else {
                *entry += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn inc_and_get() {
        let c = Counters::new();
        c.inc("records", 3);
        c.inc("records", 4);
        assert_eq!(c.get("records"), 7);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn clones_share_storage() {
        let c = Counters::new();
        let c2 = c.clone();
        c2.inc("x", 5);
        assert_eq!(c.get("x"), 5);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Counters::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 8000);
    }

    #[test]
    fn merge_adds() {
        let a = Counters::new();
        a.inc("x", 1);
        a.inc("y", 2);
        let b = Counters::new();
        b.inc("y", 3);
        b.inc("z", 4);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap["x"], 1);
        assert_eq!(snap["y"], 5);
        assert_eq!(snap["z"], 4);
    }

    #[test]
    fn high_water_counters_fold_by_max() {
        let a = Counters::new();
        a.set_max(builtin::MEM_ACCOUNTED_PEAK, 100);
        a.set_max(builtin::MEM_ACCOUNTED_PEAK, 40);
        assert_eq!(a.get(builtin::MEM_ACCOUNTED_PEAK), 100);
        a.set_max(builtin::MEM_ACCOUNTED_PEAK, 250);
        assert_eq!(a.get(builtin::MEM_ACCOUNTED_PEAK), 250);
        // merge keeps the larger watermark instead of summing.
        let b = Counters::new();
        b.set_max(builtin::MEM_ACCOUNTED_PEAK, 120);
        b.inc("x", 7);
        a.merge(&b);
        assert_eq!(a.get(builtin::MEM_ACCOUNTED_PEAK), 250);
        assert_eq!(a.get("x"), 7);
    }
}
