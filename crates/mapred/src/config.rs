//! Job configuration, mirroring Hadoop's string-typed `Configuration`
//! object that mappers and reducers read in their `setup` methods (the
//! paper's Algorithms 1–5 all start with `setup(Configuration conf)`).

use std::collections::BTreeMap;

/// String-keyed job configuration with typed getters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobConfig {
    entries: BTreeMap<String, String>,
}

impl JobConfig {
    /// An empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to the string form of `value` (builder style).
    pub fn set(mut self, key: &str, value: impl ToString) -> Self {
        self.entries.insert(key.to_string(), value.to_string());
        self
    }

    /// In-place variant of [`Self::set`].
    pub fn put(&mut self, key: &str, value: impl ToString) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// Raw string value of `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// `key` parsed as `f64`; `None` when absent or malformed.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    /// `key` parsed as `i64`; `None` when absent or malformed.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key)?.parse().ok()
    }

    /// `key` parsed as `usize`; `None` when absent or malformed.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.parse().ok()
    }

    /// `key` parsed as `bool` (`true`/`false`); `None` when absent or
    /// malformed.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key)?.parse().ok()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the configuration is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_typed_get() {
        let c = JobConfig::new()
            .set("k", 11)
            .set("convergence.delta", 0.5)
            .set("distance", "haversine")
            .set("verbose", true);
        assert_eq!(c.get_i64("k"), Some(11));
        assert_eq!(c.get_usize("k"), Some(11));
        assert_eq!(c.get_f64("convergence.delta"), Some(0.5));
        assert_eq!(c.get("distance"), Some("haversine"));
        assert_eq!(c.get_bool("verbose"), Some(true));
    }

    #[test]
    fn missing_and_malformed() {
        let c = JobConfig::new().set("x", "abc");
        assert_eq!(c.get("y"), None);
        assert_eq!(c.get_f64("x"), None);
        assert_eq!(c.get_i64("x"), None);
        assert_eq!(c.get_bool("x"), None);
    }

    #[test]
    fn overwrite_and_iterate() {
        let mut c = JobConfig::new().set("a", 1);
        c.put("a", 2);
        c.put("b", 3);
        assert_eq!(c.get_i64("a"), Some(2));
        assert_eq!(c.len(), 2);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert!(!c.is_empty());
        assert!(JobConfig::new().is_empty());
    }
}
