//! Cluster topology: nodes, racks and task slots.
//!
//! Mirrors the paper's experimental setup (§IV): the *Parapluie* cluster of
//! Grid'5000, where "the standard deployment environment … allocates one
//! node to the jobtracker, one node to the namenode, while the rest of the
//! nodes is assigned to datanodes and tasktrackers". Each Parapluie node
//! has 2 × 12-core AMD 1.7 GHz CPUs, so a tasktracker runs many slots.

use serde::{Deserialize, Serialize};

/// Index of a worker (datanode + tasktracker) node.
pub type NodeId = usize;
/// Index of a rack.
pub type RackId = usize;

/// The virtual cluster layout used for chunk placement and for the
/// simulated schedule. Only *worker* nodes are modeled individually; the
/// namenode/jobtracker pair contributes the constant startup overhead in
/// [`crate::sim::SimParams`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Rack of each worker node (`racks[node]`).
    racks: Vec<RackId>,
    /// Concurrent task slots per worker node.
    slots_per_node: usize,
}

impl Topology {
    /// A topology with `nodes` workers spread round-robin over
    /// `num_racks` racks, each worker offering `slots_per_node` slots.
    ///
    /// # Panics
    /// If any argument is zero.
    pub fn new(nodes: usize, num_racks: usize, slots_per_node: usize) -> Self {
        assert!(nodes > 0 && num_racks > 0 && slots_per_node > 0);
        Self {
            racks: (0..nodes).map(|n| n % num_racks).collect(),
            slots_per_node,
        }
    }

    /// The paper's testbed: 7 Parapluie nodes = namenode + jobtracker +
    /// **5 worker nodes** (2×12 cores each → 24 slots), in 2 racks.
    pub fn parapluie() -> Self {
        Self::new(5, 2, 24)
    }

    /// A single-node "cluster" (pseudo-distributed Hadoop).
    pub fn single_node(slots: usize) -> Self {
        Self::new(1, 1, slots.max(1))
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.racks.len()
    }

    /// Number of distinct racks.
    pub fn num_racks(&self) -> usize {
        self.racks.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Rack of `node`.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.racks[node]
    }

    /// Slots per worker node.
    pub fn slots_per_node(&self) -> usize {
        self.slots_per_node
    }

    /// Total slots across the cluster.
    pub fn total_slots(&self) -> usize {
        self.num_nodes() * self.slots_per_node
    }

    /// Nodes in `rack` other than `exclude`.
    pub fn rack_peers(&self, rack: RackId, exclude: NodeId) -> Vec<NodeId> {
        (0..self.num_nodes())
            .filter(|&n| self.racks[n] == rack && n != exclude)
            .collect()
    }

    /// Nodes outside `rack`.
    pub fn other_racks(&self, rack: RackId) -> Vec<NodeId> {
        (0..self.num_nodes())
            .filter(|&n| self.racks[n] != rack)
            .collect()
    }
}

/// A runnable cluster: topology plus the time-model parameters and the
/// failure-injection plan applied to every job submitted to it.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Worker nodes, racks and slots.
    pub topology: Topology,
    /// Virtual-cluster time-model parameters.
    pub sim: crate::sim::SimParams,
    /// Failure-injection plan applied to every job.
    pub failures: crate::job::FailurePlan,
    /// Scripted node/replica chaos plan (crashes, corruption,
    /// degradation) plus the cluster's shared virtual clock.
    pub chaos: crate::chaos::ChaosPlan,
}

impl Cluster {
    /// The paper's 7-node Parapluie deployment with its measured ~25 s
    /// startup overhead.
    pub fn parapluie() -> Self {
        Self {
            topology: Topology::parapluie(),
            sim: crate::sim::SimParams::parapluie(),
            failures: crate::job::FailurePlan::none(),
            chaos: crate::chaos::ChaosPlan::none(),
        }
    }

    /// A small local cluster for tests: `nodes` workers × `slots` slots,
    /// one rack, no startup overhead.
    pub fn local(nodes: usize, slots: usize) -> Self {
        Self {
            topology: Topology::new(nodes.max(1), 1, slots.max(1)),
            sim: crate::sim::SimParams::instant(),
            failures: crate::job::FailurePlan::none(),
            chaos: crate::chaos::ChaosPlan::none(),
        }
    }

    /// Replaces the failure plan (builder style).
    pub fn with_failures(mut self, failures: crate::job::FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Replaces the chaos plan (builder style).
    pub fn with_chaos(mut self, chaos: crate::chaos::ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_racks() {
        let t = Topology::new(5, 2, 4);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(1), 1);
        assert_eq!(t.rack_of(4), 0);
        assert_eq!(t.total_slots(), 20);
    }

    #[test]
    fn parapluie_profile() {
        let t = Topology::parapluie();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.slots_per_node(), 24);
        assert_eq!(t.num_racks(), 2);
    }

    #[test]
    fn peers_and_other_racks() {
        let t = Topology::new(4, 2, 1);
        // racks: 0 1 0 1
        assert_eq!(t.rack_peers(0, 0), vec![2]);
        assert_eq!(t.rack_peers(1, 3), vec![1]);
        assert_eq!(t.other_racks(0), vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = Topology::new(0, 1, 1);
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::single_node(8);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.total_slots(), 8);
        assert!(t.rack_peers(0, 0).is_empty());
        assert!(t.other_racks(0).is_empty());
    }
}
