//! Driver-level job recovery: retry budgets, virtual-time backoff and
//! DFS healing between attempts.
//!
//! The engine's jobtracker already retries individual *task* attempts;
//! this module is the layer above it — what a driver does when an entire
//! job dies (every replica of a chunk unreadable, a task out of
//! attempts, the cluster out of live nodes). Iterative drivers
//! (`mapreduce_kmeans`, DJ-Cluster) keep their loop state *outside* the
//! job, so a failed job costs one attempt, not the whole computation:
//! they wrap each iteration's job in [`run_with_recovery`] and resume
//! from the last good checkpoint.
//!
//! Between attempts the helper:
//!
//! 1. re-replicates under-replicated DFS blocks onto surviving nodes
//!    ([`crate::dfs::Dfs::rereplicate`]), the namenode's reaction to a
//!    datanode death;
//! 2. advances the shared virtual clock by an exponential backoff, so
//!    recovery time shows up in the replayed makespan;
//! 3. re-submits under the name `{base}.r{attempt}` — a distinct job
//!    name, so deterministic failure injection re-rolls its per-attempt
//!    coin flips exactly like a real resubmission would. Attempt 0 keeps
//!    the bare name, keeping no-failure runs byte-identical to drivers
//!    that never heard of recovery.

use crate::dfs::Dfs;
use crate::job::JobError;
use crate::topology::Cluster;
use gepeto_telemetry::Recorder;

/// How hard a driver tries to keep a job alive across whole-job
/// failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-submissions after the first attempt (0 = fail fast).
    pub max_job_retries: u32,
    /// Virtual seconds charged before the first re-submission.
    pub backoff_s: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Extra re-submissions reserved for storage failures
    /// ([`JobError::Io`] / [`JobError::DiskFull`]) — these draw from
    /// their own budget so a flaky disk does not eat the node-failure
    /// budget.
    pub io_retries: u32,
    /// Virtual seconds charged before an IO re-submission (doubles per
    /// IO failure).
    pub io_backoff_s: f64,
    /// How much the advised memory budget *grows* after each ENOSPC —
    /// a larger budget spills fewer bytes, shrinking the disk
    /// footprint (graceful degradation: trade RAM for disk).
    pub enospc_budget_factor: f64,
}

impl RetryPolicy {
    /// No retries: the first [`JobError`] is final.
    pub fn none() -> Self {
        Self {
            max_job_retries: 0,
            backoff_s: 0.0,
            backoff_factor: 1.0,
            io_retries: 0,
            io_backoff_s: 0.0,
            enospc_budget_factor: 1.0,
        }
    }

    /// Sets the retry budget.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_job_retries = n;
        self
    }

    /// Sets the initial virtual-time backoff in seconds.
    pub fn backoff(mut self, secs: f64) -> Self {
        self.backoff_s = secs.max(0.0);
        self
    }

    /// Sets the storage-failure retry budget (builder style).
    pub fn io_retries(mut self, n: u32) -> Self {
        self.io_retries = n;
        self
    }

    /// Sets the initial IO backoff in virtual seconds (builder style).
    pub fn io_backoff(mut self, secs: f64) -> Self {
        self.io_backoff_s = secs.max(0.0);
        self
    }

    /// Sets the ENOSPC budget growth factor (builder style; min 1).
    pub fn enospc_factor(mut self, factor: f64) -> Self {
        self.enospc_budget_factor = factor.max(1.0);
        self
    }
}

impl Default for RetryPolicy {
    /// Two re-submissions, 5 virtual seconds of backoff doubling each
    /// time — roughly Hadoop's `mapreduce.am.max-attempts` posture —
    /// plus three storage retries with a short 1 s backoff and 2×
    /// budget growth per ENOSPC.
    fn default() -> Self {
        Self {
            max_job_retries: 2,
            backoff_s: 5.0,
            backoff_factor: 2.0,
            io_retries: 3,
            io_backoff_s: 1.0,
            enospc_budget_factor: 2.0,
        }
    }
}

/// What the storage-aware recovery loop tells each attempt about the
/// state of the disk, so drivers can degrade gracefully instead of
/// failing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageAdvice {
    /// Storage-classified failures seen so far (EIO exhaustion etc.).
    pub io_failures: u32,
    /// ENOSPC failures seen so far.
    pub enospc_failures: u32,
}

impl StorageAdvice {
    /// The memory budget this attempt should run with: `base` grown by
    /// the policy's ENOSPC factor once per disk-full failure. A `None`
    /// base (fully in-memory) stays `None`.
    pub fn scaled_budget(&self, policy: &RetryPolicy, base: Option<usize>) -> Option<usize> {
        base.map(|b| {
            let factor = policy
                .enospc_budget_factor
                .max(1.0)
                .powi(self.enospc_failures.min(16) as i32);
            (b as f64 * factor) as usize
        })
    }
}

fn is_storage(err: &JobError) -> bool {
    matches!(err, JobError::Io(_) | JobError::DiskFull(_))
}

/// Runs `run` until it succeeds or the retry budget is spent.
///
/// `run` receives the attempt's job name (`base_name`, then
/// `{base_name}.r1`, `.r2`, …) and a shared reference to the DFS; between
/// attempts the DFS is healed via [`Dfs::rereplicate`] against the
/// cluster's chaos plan and the virtual clock advances by the policy's
/// backoff. Returns the successful value together with the number of
/// retries that were needed (0 = first attempt succeeded). The last
/// error is returned unchanged once the budget is exhausted.
pub fn run_with_recovery<V, T, F>(
    base_name: &str,
    cluster: &Cluster,
    dfs: &mut Dfs<V>,
    policy: &RetryPolicy,
    telemetry: &Recorder,
    mut run: F,
) -> Result<(T, u32), JobError>
where
    V: Clone,
    F: FnMut(&str, &Dfs<V>) -> Result<T, JobError>,
{
    run_with_recovery_io(
        base_name,
        cluster,
        dfs,
        policy,
        telemetry,
        |name, dfs, _| run(name, dfs),
    )
}

/// The storage-aware variant of [`run_with_recovery`]: `run` also
/// receives a [`StorageAdvice`] describing the disk failures seen so
/// far, so an attempt after an ENOSPC can re-run with a grown memory
/// budget ([`StorageAdvice::scaled_budget`]) and spill fewer bytes.
///
/// Storage-classified failures ([`JobError::Io`], [`JobError::DiskFull`])
/// draw from the policy's separate `io_retries` budget with the shorter
/// `io_backoff_s` virtual backoff; everything else uses the ordinary job
/// budget. Returns the value and the *total* number of re-submissions.
///
/// # Errors
/// The last [`JobError`] once the relevant budget is exhausted.
pub fn run_with_recovery_io<V, T, F>(
    base_name: &str,
    cluster: &Cluster,
    dfs: &mut Dfs<V>,
    policy: &RetryPolicy,
    telemetry: &Recorder,
    mut run: F,
) -> Result<(T, u32), JobError>
where
    V: Clone,
    F: FnMut(&str, &Dfs<V>, &StorageAdvice) -> Result<T, JobError>,
{
    let mut backoff = policy.backoff_s;
    let mut io_backoff = policy.io_backoff_s;
    let mut job_fails = 0u32;
    let mut advice = StorageAdvice::default();
    let mut attempt = 0u32;
    loop {
        let job_name = if attempt == 0 {
            base_name.to_string()
        } else {
            format!("{base_name}.r{attempt}")
        };
        match run(&job_name, &*dfs, &advice) {
            Ok(value) => return Ok((value, attempt)),
            Err(err) => {
                let storage = is_storage(&err);
                let budget_left = if storage {
                    advice.io_failures + advice.enospc_failures < policy.io_retries
                } else {
                    job_fails < policy.max_job_retries
                };
                if !budget_left {
                    return Err(err);
                }
                telemetry.point(
                    if storage {
                        "driver.io_retry"
                    } else {
                        "driver.retry"
                    },
                    (attempt + 1) as f64,
                    &[("job", base_name), ("error", &err.to_string())],
                );
                if storage {
                    if matches!(err, JobError::DiskFull(_)) {
                        advice.enospc_failures += 1;
                    } else {
                        advice.io_failures += 1;
                    }
                    cluster.chaos.advance(io_backoff);
                    io_backoff *= 2.0;
                } else {
                    job_fails += 1;
                    let report = dfs.rereplicate(&cluster.chaos);
                    if report.new_replicas > 0 || !report.lost_blocks.is_empty() {
                        telemetry.point(
                            "driver.rereplicated",
                            report.new_replicas as f64,
                            &[
                                ("job", base_name),
                                ("lost_blocks", &report.lost_blocks.len().to_string()),
                            ],
                        );
                    }
                    cluster.chaos.advance(backoff);
                    backoff *= policy.backoff_factor.max(0.0);
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::dfs::DfsError;

    fn tiny_dfs(cluster: &Cluster) -> Dfs<u64> {
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("f", (0..32u64).collect(), 8).unwrap();
        dfs
    }

    #[test]
    fn first_attempt_success_keeps_the_bare_name() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut names = Vec::new();
        let (value, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(),
            &Recorder::disabled(),
            |name, _| {
                names.push(name.to_string());
                Ok(42)
            },
        )
        .unwrap();
        assert_eq!((value, retries), (42, 0));
        assert_eq!(names, ["job"]);
    }

    #[test]
    fn retries_get_suffixed_names_and_are_counted() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut names = Vec::new();
        let (value, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(),
            &Recorder::disabled(),
            |name, _| {
                names.push(name.to_string());
                if names.len() < 3 {
                    Err(JobError::ClusterDead)
                } else {
                    Ok("ok")
                }
            },
        )
        .unwrap();
        assert_eq!((value, retries), ("ok", 2));
        assert_eq!(names, ["job", "job.r1", "job.r2"]);
    }

    #[test]
    fn budget_exhausted_returns_the_last_error() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let err = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default().retries(1),
            &Recorder::disabled(),
            |_, _| -> Result<(), _> { Err(JobError::Dfs(DfsError::AllReplicasLost(7))) },
        )
        .unwrap_err();
        assert_eq!(err, JobError::Dfs(DfsError::AllReplicasLost(7)));
    }

    #[test]
    fn none_policy_fails_fast() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut calls = 0;
        let err = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::none(),
            &Recorder::disabled(),
            |_, _| -> Result<(), _> {
                calls += 1;
                Err(JobError::ClusterDead)
            },
        )
        .unwrap_err();
        assert_eq!(err, JobError::ClusterDead);
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_advances_the_virtual_clock_exponentially() {
        let chaos = ChaosPlan::none();
        let cluster = Cluster::local(2, 2).with_chaos(chaos.clone());
        let mut dfs = tiny_dfs(&cluster);
        let mut calls = 0;
        let (_, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(), // 5s backoff, ×2
            &Recorder::disabled(),
            |_, _| {
                calls += 1;
                if calls < 3 {
                    Err(JobError::ClusterDead)
                } else {
                    Ok(())
                }
            },
        )
        .unwrap();
        assert_eq!(retries, 2);
        // Two failed attempts: 5s + 10s of backoff on the shared clock.
        assert!((chaos.now() - 15.0).abs() < 1e-9, "clock: {}", chaos.now());
    }

    #[test]
    fn storage_failures_draw_their_own_budget_and_grow_the_advice() {
        let chaos = ChaosPlan::none();
        let cluster = Cluster::local(2, 2).with_chaos(chaos.clone());
        let mut dfs = tiny_dfs(&cluster);
        let policy = RetryPolicy::default().retries(0).io_retries(3);
        let mut budgets = Vec::new();
        let (_, retries) = run_with_recovery_io(
            "job",
            &cluster,
            &mut dfs,
            &policy,
            &Recorder::disabled(),
            |_, _, advice: &StorageAdvice| {
                budgets.push(advice.scaled_budget(&policy, Some(1000)));
                match budgets.len() {
                    1 => Err(JobError::DiskFull("spill: no room".into())),
                    2 => Err(JobError::Io("transient EIO persisted".into())),
                    3 => Err(JobError::DiskFull("still tight".into())),
                    _ => Ok(()),
                }
            },
        )
        .unwrap();
        assert_eq!(retries, 3, "three storage failures absorbed");
        // ENOSPC failures double the advised budget; plain IO does not.
        assert_eq!(budgets, [Some(1000), Some(2000), Some(2000), Some(4000)]);
        // IO backoff: 1 + 2 + 4 virtual seconds.
        assert!((chaos.now() - 7.0).abs() < 1e-9, "clock: {}", chaos.now());
    }

    #[test]
    fn storage_budget_exhaustion_returns_the_storage_error() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut calls = 0;
        let err = run_with_recovery_io(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default().retries(5).io_retries(1),
            &Recorder::disabled(),
            |_, _, _| -> Result<(), _> {
                calls += 1;
                Err(JobError::DiskFull("full".into()))
            },
        )
        .unwrap_err();
        assert!(matches!(err, JobError::DiskFull(_)));
        assert_eq!(calls, 2, "io budget, not the job budget, applies");
    }

    #[test]
    fn none_budget_stays_in_memory_regardless_of_enospc() {
        let advice = StorageAdvice {
            io_failures: 0,
            enospc_failures: 3,
        };
        assert_eq!(advice.scaled_budget(&RetryPolicy::default(), None), None);
    }

    #[test]
    fn failed_attempts_heal_the_dfs_between_tries() {
        // Node 0 dies immediately; every block it held is under-replicated
        // until rereplicate copies it onto a survivor.
        let chaos = ChaosPlan::none().crash_node(0, 0.0);
        let cluster = Cluster::local(3, 2).with_chaos(chaos.clone());
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("f", (0..32u64).collect(), 8).unwrap();
        let telemetry = Recorder::enabled();
        let mut calls = 0;
        run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default().retries(1),
            &telemetry,
            |_, dfs| {
                calls += 1;
                if calls == 1 {
                    Err(JobError::ClusterDead)
                } else {
                    // After healing, every block must be readable without
                    // touching the dead node.
                    for &id in dfs.blocks_of("f").unwrap() {
                        let replicas = dfs.readable_replicas(id, &chaos, chaos.now());
                        assert!(!replicas.contains(&0));
                        assert!(!replicas.is_empty(), "block {id} unreadable after heal");
                    }
                    Ok(())
                }
            },
        )
        .unwrap();
        let retried: Vec<_> = telemetry
            .events()
            .into_iter()
            .filter(|e| e.name == "driver.retry")
            .collect();
        assert_eq!(retried.len(), 1);
    }
}
