//! Driver-level job recovery: retry budgets, virtual-time backoff and
//! DFS healing between attempts.
//!
//! The engine's jobtracker already retries individual *task* attempts;
//! this module is the layer above it — what a driver does when an entire
//! job dies (every replica of a chunk unreadable, a task out of
//! attempts, the cluster out of live nodes). Iterative drivers
//! (`mapreduce_kmeans`, DJ-Cluster) keep their loop state *outside* the
//! job, so a failed job costs one attempt, not the whole computation:
//! they wrap each iteration's job in [`run_with_recovery`] and resume
//! from the last good checkpoint.
//!
//! Between attempts the helper:
//!
//! 1. re-replicates under-replicated DFS blocks onto surviving nodes
//!    ([`crate::dfs::Dfs::rereplicate`]), the namenode's reaction to a
//!    datanode death;
//! 2. advances the shared virtual clock by an exponential backoff, so
//!    recovery time shows up in the replayed makespan;
//! 3. re-submits under the name `{base}.r{attempt}` — a distinct job
//!    name, so deterministic failure injection re-rolls its per-attempt
//!    coin flips exactly like a real resubmission would. Attempt 0 keeps
//!    the bare name, keeping no-failure runs byte-identical to drivers
//!    that never heard of recovery.

use crate::dfs::Dfs;
use crate::job::JobError;
use crate::topology::Cluster;
use gepeto_telemetry::Recorder;

/// How hard a driver tries to keep a job alive across whole-job
/// failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-submissions after the first attempt (0 = fail fast).
    pub max_job_retries: u32,
    /// Virtual seconds charged before the first re-submission.
    pub backoff_s: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retries: the first [`JobError`] is final.
    pub fn none() -> Self {
        Self {
            max_job_retries: 0,
            backoff_s: 0.0,
            backoff_factor: 1.0,
        }
    }

    /// Sets the retry budget.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_job_retries = n;
        self
    }

    /// Sets the initial virtual-time backoff in seconds.
    pub fn backoff(mut self, secs: f64) -> Self {
        self.backoff_s = secs.max(0.0);
        self
    }
}

impl Default for RetryPolicy {
    /// Two re-submissions, 5 virtual seconds of backoff doubling each
    /// time — roughly Hadoop's `mapreduce.am.max-attempts` posture.
    fn default() -> Self {
        Self {
            max_job_retries: 2,
            backoff_s: 5.0,
            backoff_factor: 2.0,
        }
    }
}

/// Runs `run` until it succeeds or the retry budget is spent.
///
/// `run` receives the attempt's job name (`base_name`, then
/// `{base_name}.r1`, `.r2`, …) and a shared reference to the DFS; between
/// attempts the DFS is healed via [`Dfs::rereplicate`] against the
/// cluster's chaos plan and the virtual clock advances by the policy's
/// backoff. Returns the successful value together with the number of
/// retries that were needed (0 = first attempt succeeded). The last
/// error is returned unchanged once the budget is exhausted.
pub fn run_with_recovery<V, T, F>(
    base_name: &str,
    cluster: &Cluster,
    dfs: &mut Dfs<V>,
    policy: &RetryPolicy,
    telemetry: &Recorder,
    mut run: F,
) -> Result<(T, u32), JobError>
where
    V: Clone,
    F: FnMut(&str, &Dfs<V>) -> Result<T, JobError>,
{
    let mut backoff = policy.backoff_s;
    for attempt in 0..=policy.max_job_retries {
        let job_name = if attempt == 0 {
            base_name.to_string()
        } else {
            format!("{base_name}.r{attempt}")
        };
        match run(&job_name, &*dfs) {
            Ok(value) => return Ok((value, attempt)),
            Err(err) if attempt < policy.max_job_retries => {
                telemetry.point(
                    "driver.retry",
                    (attempt + 1) as f64,
                    &[("job", base_name), ("error", &err.to_string())],
                );
                let report = dfs.rereplicate(&cluster.chaos);
                if report.new_replicas > 0 || !report.lost_blocks.is_empty() {
                    telemetry.point(
                        "driver.rereplicated",
                        report.new_replicas as f64,
                        &[
                            ("job", base_name),
                            ("lost_blocks", &report.lost_blocks.len().to_string()),
                        ],
                    );
                }
                cluster.chaos.advance(backoff);
                backoff *= policy.backoff_factor.max(0.0);
            }
            Err(err) => return Err(err),
        }
    }
    unreachable!("loop returns on success or on the final error")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::dfs::DfsError;

    fn tiny_dfs(cluster: &Cluster) -> Dfs<u64> {
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("f", (0..32u64).collect(), 8).unwrap();
        dfs
    }

    #[test]
    fn first_attempt_success_keeps_the_bare_name() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut names = Vec::new();
        let (value, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(),
            &Recorder::disabled(),
            |name, _| {
                names.push(name.to_string());
                Ok(42)
            },
        )
        .unwrap();
        assert_eq!((value, retries), (42, 0));
        assert_eq!(names, ["job"]);
    }

    #[test]
    fn retries_get_suffixed_names_and_are_counted() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut names = Vec::new();
        let (value, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(),
            &Recorder::disabled(),
            |name, _| {
                names.push(name.to_string());
                if names.len() < 3 {
                    Err(JobError::ClusterDead)
                } else {
                    Ok("ok")
                }
            },
        )
        .unwrap();
        assert_eq!((value, retries), ("ok", 2));
        assert_eq!(names, ["job", "job.r1", "job.r2"]);
    }

    #[test]
    fn budget_exhausted_returns_the_last_error() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let err = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default().retries(1),
            &Recorder::disabled(),
            |_, _| -> Result<(), _> { Err(JobError::Dfs(DfsError::AllReplicasLost(7))) },
        )
        .unwrap_err();
        assert_eq!(err, JobError::Dfs(DfsError::AllReplicasLost(7)));
    }

    #[test]
    fn none_policy_fails_fast() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = tiny_dfs(&cluster);
        let mut calls = 0;
        let err = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::none(),
            &Recorder::disabled(),
            |_, _| -> Result<(), _> {
                calls += 1;
                Err(JobError::ClusterDead)
            },
        )
        .unwrap_err();
        assert_eq!(err, JobError::ClusterDead);
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_advances_the_virtual_clock_exponentially() {
        let chaos = ChaosPlan::none();
        let cluster = Cluster::local(2, 2).with_chaos(chaos.clone());
        let mut dfs = tiny_dfs(&cluster);
        let mut calls = 0;
        let (_, retries) = run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default(), // 5s backoff, ×2
            &Recorder::disabled(),
            |_, _| {
                calls += 1;
                if calls < 3 {
                    Err(JobError::ClusterDead)
                } else {
                    Ok(())
                }
            },
        )
        .unwrap();
        assert_eq!(retries, 2);
        // Two failed attempts: 5s + 10s of backoff on the shared clock.
        assert!((chaos.now() - 15.0).abs() < 1e-9, "clock: {}", chaos.now());
    }

    #[test]
    fn failed_attempts_heal_the_dfs_between_tries() {
        // Node 0 dies immediately; every block it held is under-replicated
        // until rereplicate copies it onto a survivor.
        let chaos = ChaosPlan::none().crash_node(0, 0.0);
        let cluster = Cluster::local(3, 2).with_chaos(chaos.clone());
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("f", (0..32u64).collect(), 8).unwrap();
        let telemetry = Recorder::enabled();
        let mut calls = 0;
        run_with_recovery(
            "job",
            &cluster,
            &mut dfs,
            &RetryPolicy::default().retries(1),
            &telemetry,
            |_, dfs| {
                calls += 1;
                if calls == 1 {
                    Err(JobError::ClusterDead)
                } else {
                    // After healing, every block must be readable without
                    // touching the dead node.
                    for &id in dfs.blocks_of("f").unwrap() {
                        let replicas = dfs.readable_replicas(id, &chaos, chaos.now());
                        assert!(!replicas.contains(&0));
                        assert!(!replicas.is_empty(), "block {id} unreadable after heal");
                    }
                    Ok(())
                }
            },
        )
        .unwrap();
        let retried: Vec<_> = telemetry
            .events()
            .into_iter()
            .filter(|e| e.name == "driver.retry")
            .collect();
        assert_eq!(retried.len(), 1);
    }
}
