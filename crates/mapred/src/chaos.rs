//! Deterministic fault injection for the virtual cluster.
//!
//! Hadoop's robustness story (§III of the paper: the jobtracker "monitors
//! tasks and handles failures", HDFS keeps 3 replicas of every chunk) only
//! matters when something actually fails. A [`ChaosPlan`] scripts those
//! failures against *virtual* cluster time, so every recovery path — replica
//! failover, map re-execution, node blacklisting, driver checkpoint/resume —
//! is exercised by ordinary unit tests and replays bit-identically on every
//! run. Three event kinds are modeled:
//!
//! - **node crash** at virtual time `t`: the node stops accepting tasks,
//!   in-flight attempts are killed, its local map outputs and chunk
//!   replicas become unreadable;
//! - **replica corruption** of (block, node): the stored chunk no longer
//!   matches its checksum on that one datanode, so reads fail over;
//! - **node degradation** from time `t`: the node keeps running but its
//!   compute slows by a factor (a failing disk / thermal-throttled CPU).
//!
//! The plan carries the cluster's shared **virtual clock**: each job run
//! advances it by the job's simulated makespan, so "crash node 2 at t=40 s"
//! lands mid-pipeline in exactly the same place every time.

use crate::dfs::BlockId;
use crate::hash::unit_hash;
use crate::topology::NodeId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One scripted failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// `node` dies (permanently) at virtual time `at_s`.
    CrashNode {
        /// The worker that crashes.
        node: NodeId,
        /// Virtual time of the crash, seconds since cluster start.
        at_s: f64,
    },
    /// The replica of `block` stored on `node` is silently corrupted
    /// (effective immediately; checksum verification catches it on read).
    CorruptReplica {
        /// The damaged chunk.
        block: BlockId,
        /// The datanode whose copy is damaged.
        node: NodeId,
    },
    /// `node`'s compute slows by `slowdown`× from virtual time `at_s`.
    DegradeNode {
        /// The degraded worker.
        node: NodeId,
        /// Virtual time the degradation starts, seconds.
        at_s: f64,
        /// Multiplier applied to the node's compute time (≥ 1).
        slowdown: f64,
    },
}

/// One injected storage fault, as decided by an [`IoFaultPlan`] for a
/// particular (site, attempt) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum IoFault {
    /// The write (or read) fails with a transient EIO; retrying the same
    /// site at a later attempt eventually succeeds.
    TransientEio,
    /// The disk is out of capacity for this payload (ENOSPC). Durable
    /// until bytes are released or the payload shrinks.
    DiskFull,
    /// The write is acknowledged but only the first `keep_bytes` of the
    /// full stream (payload + footer) actually reach the platter.
    TornWrite {
        /// Bytes of the full commit stream that survive.
        keep_bytes: usize,
    },
    /// The write lands intact, then one byte at `offset` within the
    /// payload flips at rest (silent media corruption).
    BitRot {
        /// Payload offset of the flipped byte.
        offset: usize,
    },
}

/// A deterministic storage-fault schedule injected beneath the spill and
/// DFS write/read paths. Every decision is a pure function of
/// `(seed, kind, site, attempt)` through [`unit_hash`], so a run with the
/// same plan replays its faults bit-identically.
///
/// Faults are *guaranteed transient by construction*: torn writes and
/// bit-rot fire only on attempt 0 of a site (a verified rewrite always
/// heals), and transient EIOs stop firing once `attempt` reaches
/// `max_eio_streak`. ENOSPC is the exception — it models real capacity:
/// a write fails while `bytes_in_use + payload > disk_capacity`, and
/// succeeds once space is released or the caller shrinks its footprint
/// (e.g. by raising the spill budget so fewer bytes hit disk).
#[derive(Debug, Clone)]
pub struct IoFaultPlan {
    seed: u64,
    eio_prob: f64,
    max_eio_streak: u32,
    torn_prob: f64,
    bitrot_prob: f64,
    disk_capacity: Option<u64>,
    /// Extra virtual seconds charged per MiB written (slow disk).
    slow_s_per_mib: f64,
    bytes_in_use: Arc<AtomicU64>,
}

impl IoFaultPlan {
    /// A plan with every probability at zero; faults are opted into via
    /// the builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            eio_prob: 0.0,
            max_eio_streak: 2,
            torn_prob: 0.0,
            bitrot_prob: 0.0,
            disk_capacity: None,
            slow_s_per_mib: 0.0,
            bytes_in_use: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Probability that a given (site, attempt) write or read fails with
    /// a transient EIO (builder style; clamped to [0, 1]).
    pub fn eio(mut self, prob: f64) -> Self {
        self.eio_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Attempts past this index never draw an EIO, bounding every retry
    /// loop (builder style; min 1).
    pub fn eio_streak(mut self, max: u32) -> Self {
        self.max_eio_streak = max.max(1);
        self
    }

    /// Probability that a site's first write is torn (builder style).
    pub fn torn(mut self, prob: f64) -> Self {
        self.torn_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Probability that a site's first write bit-rots at rest
    /// (builder style).
    pub fn bitrot(mut self, prob: f64) -> Self {
        self.bitrot_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Caps the virtual disk at `bytes`; committed writes charge it and
    /// deletions release it (builder style).
    pub fn disk_capacity(mut self, bytes: u64) -> Self {
        self.disk_capacity = Some(bytes);
        self
    }

    /// Charges `secs_per_mib` virtual seconds per MiB written — a slow,
    /// failing disk (builder style).
    pub fn slow(mut self, secs_per_mib: f64) -> Self {
        self.slow_s_per_mib = secs_per_mib.max(0.0);
        self
    }

    fn roll(&self, kind: &str, site: &str, attempt: u32) -> f64 {
        unit_hash(&(self.seed, kind, site, attempt))
    }

    /// The fault (if any) injected into a commit of `payload_len` bytes
    /// at `site`, on retry number `attempt`. Precedence: disk-full, then
    /// torn write, then bit-rot (both first-attempt-only, so `torn(1.0)`
    /// deterministically tears every site's first write), then transient
    /// EIO.
    pub fn write_fault(&self, site: &str, attempt: u32, payload_len: usize) -> Option<IoFault> {
        if let Some(cap) = self.disk_capacity {
            let used = self.bytes_in_use.load(Ordering::Relaxed);
            if used.saturating_add(payload_len as u64) > cap {
                return Some(IoFault::DiskFull);
            }
        }
        if attempt == 0 && payload_len > 0 {
            if self.roll("torn", site, 0) < self.torn_prob {
                // Keep a hash-derived prefix of the full stream; the
                // footer is 24 bytes so anything short of full length
                // is structurally detectable.
                let keep = (self.roll("torn-len", site, 0) * payload_len as f64) as usize;
                return Some(IoFault::TornWrite { keep_bytes: keep });
            }
            if self.roll("rot", site, 0) < self.bitrot_prob {
                let offset = (self.roll("rot-off", site, 0) * payload_len as f64) as usize;
                return Some(IoFault::BitRot {
                    offset: offset.min(payload_len - 1),
                });
            }
        }
        if attempt < self.max_eio_streak && self.roll("w-eio", site, attempt) < self.eio_prob {
            return Some(IoFault::TransientEio);
        }
        None
    }

    /// The fault (if any) injected into a read at `site`, attempt
    /// `attempt`. Reads only see transient EIOs — at-rest damage is
    /// modeled on the write side.
    pub fn read_fault(&self, site: &str, attempt: u32) -> Option<IoFault> {
        if attempt < self.max_eio_streak && self.roll("r-eio", site, attempt) < self.eio_prob {
            return Some(IoFault::TransientEio);
        }
        None
    }

    /// Records `bytes` as committed to the virtual disk.
    pub fn charge(&self, bytes: u64) {
        self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Releases `bytes` of virtual disk (file deleted or spill dir
    /// dropped).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .bytes_in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Bytes currently charged against the virtual disk.
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes_in_use.load(Ordering::Relaxed)
    }

    /// Virtual seconds a `bytes`-sized write costs on the (possibly
    /// slow) disk.
    pub fn slow_penalty_s(&self, bytes: u64) -> f64 {
        self.slow_s_per_mib * bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A scripted, reproducible failure schedule plus the cluster's virtual
/// clock. Cloning shares the clock (all handles see the same timeline),
/// exactly like [`gepeto_telemetry::Recorder`] shares its event sink.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    /// Failed attempts on one node before the jobtracker blacklists it
    /// (Hadoop's `mapred.max.tracker.failures`; default 3). The last
    /// live node is never blacklisted.
    blacklist_after: u32,
    clock: Arc<Mutex<f64>>,
    io: Option<IoFaultPlan>,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl ChaosPlan {
    /// An empty plan: nothing ever fails (the clock still ticks).
    pub fn none() -> Self {
        Self {
            events: Vec::new(),
            blacklist_after: 3,
            clock: Arc::new(Mutex::new(0.0)),
            io: None,
        }
    }

    /// Attaches a storage fault plan injected beneath the spill and DFS
    /// IO paths (builder style).
    pub fn io_faults(mut self, plan: IoFaultPlan) -> Self {
        self.io = Some(plan);
        self
    }

    /// The attached storage fault plan, if any.
    pub fn io_plan(&self) -> Option<&IoFaultPlan> {
        self.io.as_ref()
    }

    /// Whether storage faults are being injected (fast path check; the
    /// verifying readers upgrade to deep checksum verification when
    /// this is true).
    pub fn io_active(&self) -> bool {
        self.io.is_some()
    }

    /// Adds a node crash at virtual time `at_s` (builder style).
    pub fn crash_node(mut self, node: NodeId, at_s: f64) -> Self {
        self.events.push(ChaosEvent::CrashNode { node, at_s });
        self
    }

    /// Adds a corrupted replica of `block` on `node` (builder style).
    pub fn corrupt_replica(mut self, block: BlockId, node: NodeId) -> Self {
        self.events.push(ChaosEvent::CorruptReplica { block, node });
        self
    }

    /// Degrades `node` by `slowdown`× from virtual time `at_s`
    /// (builder style). Slowdowns below 1 are clamped to 1.
    pub fn degrade_node(mut self, node: NodeId, at_s: f64, slowdown: f64) -> Self {
        self.events.push(ChaosEvent::DegradeNode {
            node,
            at_s,
            slowdown: slowdown.max(1.0),
        });
        self
    }

    /// Sets the blacklisting threshold (builder style; min 1).
    pub fn blacklist_after(mut self, attempts: u32) -> Self {
        self.blacklist_after = attempts.max(1);
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Whether any failure is scripted at all (fast path check).
    pub fn is_active(&self) -> bool {
        !self.events.is_empty()
    }

    /// The blacklisting threshold.
    pub fn blacklist_threshold(&self) -> u32 {
        self.blacklist_after
    }

    /// Current virtual time, seconds since cluster start.
    pub fn now(&self) -> f64 {
        *self.clock.lock()
    }

    /// Advances the virtual clock by `secs` (each job run adds its
    /// simulated makespan; driver backoffs add their wait).
    pub fn advance(&self, secs: f64) {
        *self.clock.lock() += secs.max(0.0);
    }

    /// The virtual time at which `node` crashes, if it ever does (the
    /// earliest crash wins if several are scripted).
    pub fn crash_time(&self, node: NodeId) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::CrashNode { node: n, at_s } if *n == node => Some(*at_s),
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Whether `node` is dead at virtual time `at_s`.
    pub fn is_dead(&self, node: NodeId, at_s: f64) -> bool {
        self.crash_time(node).is_some_and(|t| t <= at_s)
    }

    /// Whether the replica of `block` on `node` is corrupted.
    pub fn is_corrupted(&self, block: BlockId, node: NodeId) -> bool {
        self.events.iter().any(|e| {
            matches!(e, ChaosEvent::CorruptReplica { block: b, node: n }
                     if *b == block && *n == node)
        })
    }

    /// Compute slowdown factor of `node` at virtual time `at_s` (the
    /// largest active degradation; 1.0 when healthy).
    pub fn slowdown(&self, node: NodeId, at_s: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::DegradeNode {
                    node: n,
                    at_s: t,
                    slowdown,
                } if *n == node && *t <= at_s => Some(*slowdown),
                _ => None,
            })
            .fold(1.0f64, f64::max)
    }

    /// Nodes of a `num_nodes`-worker cluster still alive at `at_s`.
    pub fn live_nodes(&self, num_nodes: usize, at_s: f64) -> Vec<NodeId> {
        (0..num_nodes).filter(|&n| !self.is_dead(n, at_s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = ChaosPlan::none();
        assert!(!p.is_active());
        assert!(!p.is_dead(0, 1e9));
        assert!(!p.is_corrupted(42, 0));
        assert_eq!(p.slowdown(0, 1e9), 1.0);
        assert_eq!(p.crash_time(3), None);
        assert_eq!(p.live_nodes(4, 100.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let p = ChaosPlan::none().crash_node(2, 40.0);
        assert!(p.is_active());
        assert!(!p.is_dead(2, 39.9));
        assert!(p.is_dead(2, 40.0));
        assert!(p.is_dead(2, 1e9));
        assert!(!p.is_dead(1, 1e9));
        assert_eq!(p.crash_time(2), Some(40.0));
        assert_eq!(p.live_nodes(4, 50.0), vec![0, 1, 3]);
    }

    #[test]
    fn earliest_crash_wins() {
        let p = ChaosPlan::none().crash_node(1, 80.0).crash_node(1, 30.0);
        assert_eq!(p.crash_time(1), Some(30.0));
    }

    #[test]
    fn corruption_is_per_replica() {
        let p = ChaosPlan::none().corrupt_replica(7, 1);
        assert!(p.is_corrupted(7, 1));
        assert!(!p.is_corrupted(7, 0));
        assert!(!p.is_corrupted(8, 1));
    }

    #[test]
    fn degradation_starts_at_its_time_and_clamps() {
        let p = ChaosPlan::none()
            .degrade_node(0, 10.0, 4.0)
            .degrade_node(0, 20.0, 0.5); // clamped to 1.0
        assert_eq!(p.slowdown(0, 5.0), 1.0);
        assert_eq!(p.slowdown(0, 15.0), 4.0);
        assert_eq!(p.slowdown(0, 25.0), 4.0); // max of active factors
    }

    #[test]
    fn clock_is_shared_across_clones() {
        let p = ChaosPlan::none().crash_node(0, 100.0);
        let q = p.clone();
        p.advance(60.0);
        assert_eq!(q.now(), 60.0);
        q.advance(-5.0); // negative advances ignored
        assert_eq!(p.now(), 60.0);
    }

    #[test]
    fn io_faults_are_deterministic_and_transient() {
        let p = IoFaultPlan::new(7).eio(0.5).torn(0.5).bitrot(0.5);
        // Same (site, attempt) always draws the same fault.
        for site in ["run-0", "run-1", "chunk-3"] {
            assert_eq!(p.write_fault(site, 0, 1000), p.write_fault(site, 0, 1000));
        }
        // Past the EIO streak and attempt 0, nothing fires.
        for site in ["a", "b", "c", "d", "e"] {
            assert_eq!(p.write_fault(site, 2, 1000), None);
            assert_eq!(p.read_fault(site, 2), None);
        }
        // Torn keeps strictly fewer bytes than the payload.
        let mut saw_torn = false;
        for i in 0..64 {
            let site = format!("s{i}");
            if let Some(IoFault::TornWrite { keep_bytes }) = p.write_fault(&site, 0, 1000) {
                assert!(keep_bytes < 1000);
                saw_torn = true;
            }
        }
        assert!(saw_torn, "expected at least one torn write at p=0.5");
    }

    #[test]
    fn disk_capacity_charges_and_releases() {
        let p = IoFaultPlan::new(0).disk_capacity(1000);
        assert_eq!(p.write_fault("x", 0, 800), None);
        p.charge(800);
        assert_eq!(p.write_fault("y", 0, 300), Some(IoFault::DiskFull));
        p.release(600);
        assert_eq!(p.bytes_in_use(), 200);
        assert_eq!(p.write_fault("y", 1, 300), None);
    }

    #[test]
    fn io_plan_rides_the_chaos_plan() {
        let c = ChaosPlan::none();
        assert!(!c.io_active());
        let c = c.io_faults(IoFaultPlan::new(1).slow(2.0));
        assert!(c.io_active());
        assert!(!c.is_active(), "io faults do not imply node chaos");
        let penalty = c.io_plan().unwrap().slow_penalty_s(1024 * 1024);
        assert!((penalty - 2.0).abs() < 1e-9);
    }

    #[test]
    fn blacklist_threshold_floor() {
        assert_eq!(
            ChaosPlan::none().blacklist_after(0).blacklist_threshold(),
            1
        );
        assert_eq!(ChaosPlan::none().blacklist_threshold(), 3);
    }
}
