//! Deterministic fault injection for the virtual cluster.
//!
//! Hadoop's robustness story (§III of the paper: the jobtracker "monitors
//! tasks and handles failures", HDFS keeps 3 replicas of every chunk) only
//! matters when something actually fails. A [`ChaosPlan`] scripts those
//! failures against *virtual* cluster time, so every recovery path — replica
//! failover, map re-execution, node blacklisting, driver checkpoint/resume —
//! is exercised by ordinary unit tests and replays bit-identically on every
//! run. Three event kinds are modeled:
//!
//! - **node crash** at virtual time `t`: the node stops accepting tasks,
//!   in-flight attempts are killed, its local map outputs and chunk
//!   replicas become unreadable;
//! - **replica corruption** of (block, node): the stored chunk no longer
//!   matches its checksum on that one datanode, so reads fail over;
//! - **node degradation** from time `t`: the node keeps running but its
//!   compute slows by a factor (a failing disk / thermal-throttled CPU).
//!
//! The plan carries the cluster's shared **virtual clock**: each job run
//! advances it by the job's simulated makespan, so "crash node 2 at t=40 s"
//! lands mid-pipeline in exactly the same place every time.

use crate::dfs::BlockId;
use crate::topology::NodeId;
use parking_lot::Mutex;
use std::sync::Arc;

/// One scripted failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// `node` dies (permanently) at virtual time `at_s`.
    CrashNode {
        /// The worker that crashes.
        node: NodeId,
        /// Virtual time of the crash, seconds since cluster start.
        at_s: f64,
    },
    /// The replica of `block` stored on `node` is silently corrupted
    /// (effective immediately; checksum verification catches it on read).
    CorruptReplica {
        /// The damaged chunk.
        block: BlockId,
        /// The datanode whose copy is damaged.
        node: NodeId,
    },
    /// `node`'s compute slows by `slowdown`× from virtual time `at_s`.
    DegradeNode {
        /// The degraded worker.
        node: NodeId,
        /// Virtual time the degradation starts, seconds.
        at_s: f64,
        /// Multiplier applied to the node's compute time (≥ 1).
        slowdown: f64,
    },
}

/// A scripted, reproducible failure schedule plus the cluster's virtual
/// clock. Cloning shares the clock (all handles see the same timeline),
/// exactly like [`gepeto_telemetry::Recorder`] shares its event sink.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    /// Failed attempts on one node before the jobtracker blacklists it
    /// (Hadoop's `mapred.max.tracker.failures`; default 3). The last
    /// live node is never blacklisted.
    blacklist_after: u32,
    clock: Arc<Mutex<f64>>,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl ChaosPlan {
    /// An empty plan: nothing ever fails (the clock still ticks).
    pub fn none() -> Self {
        Self {
            events: Vec::new(),
            blacklist_after: 3,
            clock: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Adds a node crash at virtual time `at_s` (builder style).
    pub fn crash_node(mut self, node: NodeId, at_s: f64) -> Self {
        self.events.push(ChaosEvent::CrashNode { node, at_s });
        self
    }

    /// Adds a corrupted replica of `block` on `node` (builder style).
    pub fn corrupt_replica(mut self, block: BlockId, node: NodeId) -> Self {
        self.events.push(ChaosEvent::CorruptReplica { block, node });
        self
    }

    /// Degrades `node` by `slowdown`× from virtual time `at_s`
    /// (builder style). Slowdowns below 1 are clamped to 1.
    pub fn degrade_node(mut self, node: NodeId, at_s: f64, slowdown: f64) -> Self {
        self.events.push(ChaosEvent::DegradeNode {
            node,
            at_s,
            slowdown: slowdown.max(1.0),
        });
        self
    }

    /// Sets the blacklisting threshold (builder style; min 1).
    pub fn blacklist_after(mut self, attempts: u32) -> Self {
        self.blacklist_after = attempts.max(1);
        self
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Whether any failure is scripted at all (fast path check).
    pub fn is_active(&self) -> bool {
        !self.events.is_empty()
    }

    /// The blacklisting threshold.
    pub fn blacklist_threshold(&self) -> u32 {
        self.blacklist_after
    }

    /// Current virtual time, seconds since cluster start.
    pub fn now(&self) -> f64 {
        *self.clock.lock()
    }

    /// Advances the virtual clock by `secs` (each job run adds its
    /// simulated makespan; driver backoffs add their wait).
    pub fn advance(&self, secs: f64) {
        *self.clock.lock() += secs.max(0.0);
    }

    /// The virtual time at which `node` crashes, if it ever does (the
    /// earliest crash wins if several are scripted).
    pub fn crash_time(&self, node: NodeId) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::CrashNode { node: n, at_s } if *n == node => Some(*at_s),
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Whether `node` is dead at virtual time `at_s`.
    pub fn is_dead(&self, node: NodeId, at_s: f64) -> bool {
        self.crash_time(node).is_some_and(|t| t <= at_s)
    }

    /// Whether the replica of `block` on `node` is corrupted.
    pub fn is_corrupted(&self, block: BlockId, node: NodeId) -> bool {
        self.events.iter().any(|e| {
            matches!(e, ChaosEvent::CorruptReplica { block: b, node: n }
                     if *b == block && *n == node)
        })
    }

    /// Compute slowdown factor of `node` at virtual time `at_s` (the
    /// largest active degradation; 1.0 when healthy).
    pub fn slowdown(&self, node: NodeId, at_s: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                ChaosEvent::DegradeNode {
                    node: n,
                    at_s: t,
                    slowdown,
                } if *n == node && *t <= at_s => Some(*slowdown),
                _ => None,
            })
            .fold(1.0f64, f64::max)
    }

    /// Nodes of a `num_nodes`-worker cluster still alive at `at_s`.
    pub fn live_nodes(&self, num_nodes: usize, at_s: f64) -> Vec<NodeId> {
        (0..num_nodes).filter(|&n| !self.is_dead(n, at_s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = ChaosPlan::none();
        assert!(!p.is_active());
        assert!(!p.is_dead(0, 1e9));
        assert!(!p.is_corrupted(42, 0));
        assert_eq!(p.slowdown(0, 1e9), 1.0);
        assert_eq!(p.crash_time(3), None);
        assert_eq!(p.live_nodes(4, 100.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let p = ChaosPlan::none().crash_node(2, 40.0);
        assert!(p.is_active());
        assert!(!p.is_dead(2, 39.9));
        assert!(p.is_dead(2, 40.0));
        assert!(p.is_dead(2, 1e9));
        assert!(!p.is_dead(1, 1e9));
        assert_eq!(p.crash_time(2), Some(40.0));
        assert_eq!(p.live_nodes(4, 50.0), vec![0, 1, 3]);
    }

    #[test]
    fn earliest_crash_wins() {
        let p = ChaosPlan::none().crash_node(1, 80.0).crash_node(1, 30.0);
        assert_eq!(p.crash_time(1), Some(30.0));
    }

    #[test]
    fn corruption_is_per_replica() {
        let p = ChaosPlan::none().corrupt_replica(7, 1);
        assert!(p.is_corrupted(7, 1));
        assert!(!p.is_corrupted(7, 0));
        assert!(!p.is_corrupted(8, 1));
    }

    #[test]
    fn degradation_starts_at_its_time_and_clamps() {
        let p = ChaosPlan::none()
            .degrade_node(0, 10.0, 4.0)
            .degrade_node(0, 20.0, 0.5); // clamped to 1.0
        assert_eq!(p.slowdown(0, 5.0), 1.0);
        assert_eq!(p.slowdown(0, 15.0), 4.0);
        assert_eq!(p.slowdown(0, 25.0), 4.0); // max of active factors
    }

    #[test]
    fn clock_is_shared_across_clones() {
        let p = ChaosPlan::none().crash_node(0, 100.0);
        let q = p.clone();
        p.advance(60.0);
        assert_eq!(q.now(), 60.0);
        q.advance(-5.0); // negative advances ignored
        assert_eq!(p.now(), 60.0);
    }

    #[test]
    fn blacklist_threshold_floor() {
        assert_eq!(
            ChaosPlan::none().blacklist_after(0).blacklist_threshold(),
            1
        );
        assert_eq!(ChaosPlan::none().blacklist_threshold(), 3);
    }
}
