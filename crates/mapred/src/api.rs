//! The user-facing programming model: `Mapper`, `Reducer`, `Combiner`.
//!
//! "A developer designing a MapReduce-based application is left with the
//! task of specifying two primary functions, map and reduce" (§III). As in
//! Hadoop, tasks also get `setup`/`cleanup` lifecycle hooks, a
//! configuration object, counters and the distributed cache — everything
//! the paper's Algorithms 1–9 use.

use crate::cache::DistributedCache;
use crate::config::JobConfig;
use crate::counters::Counters;
use std::hash::Hash;

/// Bound for intermediate keys: they are hashed to pick a reduce
/// partition and sorted within each partition during the shuffle.
pub trait MrKey: Clone + Send + Sync + Eq + Ord + Hash + 'static {}
impl<T: Clone + Send + Sync + Eq + Ord + Hash + 'static> MrKey for T {}

/// Bound for values (and final output keys), which only need to move
/// between threads.
pub trait MrValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> MrValue for T {}

/// Per-task context handed to `setup`: the task's identity, the job
/// configuration, the distributed cache and the job's counters.
pub struct TaskContext<'a> {
    /// 0-based task index within its phase.
    pub task_id: usize,
    /// 1-based attempt number (> 1 after injected failures).
    pub attempt: u32,
    /// Job configuration strings.
    pub config: &'a JobConfig,
    /// Read-only side data.
    pub cache: &'a DistributedCache,
    /// Shared job counters.
    pub counters: &'a Counters,
}

/// Collects the key/value pairs a task emits, Hadoop's
/// `context.write(k, v)`.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self { pairs: Vec::new() }
    }
}

impl<K, V> Emitter<K, V> {
    /// A fresh, empty emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty emitter with room for `cap` pairs — used by the engine to
    /// pre-size map outputs to the input chunk length and avoid growth
    /// reallocations on the hot path.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            pairs: Vec::with_capacity(cap),
        }
    }

    /// Emits one pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consumes the emitter, returning the pairs in emission order.
    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }
}

/// The map phase of a job. One instance is cloned per map task, `setup`
/// runs once per task, then `map` runs for every input record of the
/// task's chunk, then `cleanup`.
pub trait Mapper<V1>: Clone + Send {
    /// Intermediate key type.
    type KOut: MrKey;
    /// Intermediate value type.
    type VOut: MrValue;

    /// Once-per-task initialization (load centroids, R-trees, … from the
    /// cache or configuration).
    fn setup(&mut self, _ctx: &TaskContext<'_>) {}

    /// Processes one input record. `offset` is the record's 0-based
    /// position within the whole input file (Hadoop's byte-offset key).
    fn map(&mut self, offset: u64, value: &V1, out: &mut Emitter<Self::KOut, Self::VOut>);

    /// Once-per-task teardown; may emit trailing pairs (used by windowed
    /// mappers to flush their last window).
    fn cleanup(&mut self, _out: &mut Emitter<Self::KOut, Self::VOut>) {}
}

/// The reduce phase. One instance is cloned per reduce task; `reduce` is
/// called once per distinct key with *all* values for that key.
pub trait Reducer<K2: MrKey, V2: MrValue>: Clone + Send {
    /// Final output key type.
    type KOut: MrValue;
    /// Final output value type.
    type VOut: MrValue;

    /// Whether this reducer requires its key groups in ascending key
    /// order (Hadoop's sorted-shuffle contract). Defaults to `true` for
    /// fidelity. Reducers whose final result does not depend on group
    /// order (e.g. k-means centroid updates written by cluster id, or a
    /// single-key merge) may set this to `false`; the engine then groups
    /// by hash in first-encounter order and skips the partition sort
    /// entirely, which removes the dominant `O(n log n)` shuffle cost.
    /// Within each group, value order is unchanged: it is the same
    /// deterministic map-task-order concatenation either way.
    const SORTED_INPUT: bool = true;

    /// Once-per-task initialization.
    fn setup(&mut self, _ctx: &TaskContext<'_>) {}

    /// Reduces one key group.
    fn reduce(&mut self, key: &K2, values: &[V2], out: &mut Emitter<Self::KOut, Self::VOut>);

    /// Once-per-task teardown; may emit trailing pairs (used by the
    /// single-reducer cluster-merging phase of DJ-Cluster to emit the
    /// final clusters).
    fn cleanup(&mut self, _out: &mut Emitter<Self::KOut, Self::VOut>) {}
}

/// A map-side pre-aggregator (the *combiner* of §VI's related work): runs
/// on each map task's local output, per key, to shrink the data shuffled
/// to reducers. Must be algebraically compatible with the reducer.
pub trait Combiner<K2: MrKey, V2: MrValue>: Clone + Send {
    /// Combines the values of one key emitted by a single map task into a
    /// (usually shorter) list of values.
    fn combine(&mut self, key: &K2, values: &[V2]) -> Vec<V2>;
}

/// Adapts a closure into a [`Mapper`] — handy for map-only filters where a
/// full struct would be noise.
#[derive(Clone)]
pub struct FnMapper<F, K, V> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<F, K, V> FnMapper<F, K, V> {
    /// Wraps `f(offset, value, out)`.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V1, F, K, V> Mapper<V1> for FnMapper<F, K, V>
where
    F: FnMut(u64, &V1, &mut Emitter<K, V>) + Clone + Send,
    K: MrKey,
    V: MrValue,
{
    type KOut = K;
    type VOut = V;

    fn map(&mut self, offset: u64, value: &V1, out: &mut Emitter<K, V>) {
        (self.f)(offset, value, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_in_order() {
        let mut e: Emitter<u32, &str> = Emitter::new();
        assert!(e.is_empty());
        e.emit(2, "b");
        e.emit(1, "a");
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![(2, "b"), (1, "a")]);
    }

    #[test]
    fn fn_mapper_adapts_closures() {
        let mut m = FnMapper::new(|off: u64, v: &u32, out: &mut Emitter<u64, u32>| {
            if v.is_multiple_of(2) {
                out.emit(off, *v);
            }
        });
        let mut out = Emitter::new();
        m.map(0, &4, &mut out);
        m.map(1, &5, &mut out);
        m.map(2, &6, &mut out);
        assert_eq!(out.into_pairs(), vec![(0, 4), (2, 6)]);
    }
}
