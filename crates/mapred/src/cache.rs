//! The distributed cache: read-only side data shipped to every task.
//!
//! DJ-Cluster's neighborhood mapper "first loads the R-Tree from the
//! distributed cache while executing its setup method" (§VII-B). Here the
//! cache is a map of type-erased `Arc`s; tasks downcast to the concrete
//! type. Sharing an `Arc` is the in-process analogue of Hadoop
//! materializing a cached file on each tasktracker's local disk.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

type AnyArc = Arc<dyn Any + Send + Sync>;

/// Named, typed, read-only artifacts available to every task of a job.
#[derive(Clone, Default)]
pub struct DistributedCache {
    entries: BTreeMap<String, AnyArc>,
}

impl std::fmt::Debug for DistributedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedCache")
            .field("keys", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl DistributedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `name` (builder style). Replaces any previous
    /// artifact with the same name.
    pub fn with<T: Any + Send + Sync>(mut self, name: &str, value: T) -> Self {
        self.insert(name, value);
        self
    }

    /// Stores `value` under `name`.
    pub fn insert<T: Any + Send + Sync>(&mut self, name: &str, value: T) {
        self.entries.insert(name.to_string(), Arc::new(value));
    }

    /// Stores an already-shared artifact under `name` without cloning it.
    pub fn insert_arc<T: Any + Send + Sync>(&mut self, name: &str, value: Arc<T>) {
        self.entries.insert(name.to_string(), value);
    }

    /// Fetches the artifact stored under `name`, if present and of type
    /// `T`.
    pub fn get<T: Any + Send + Sync>(&self, name: &str) -> Option<Arc<T>> {
        self.entries.get(name).cloned()?.downcast::<T>().ok()
    }

    /// Fetches like [`Self::get`] but panics with a descriptive message —
    /// the idiom for mandatory artifacts in `setup`.
    pub fn expect<T: Any + Send + Sync>(&self, name: &str) -> Arc<T> {
        match self.get::<T>(name) {
            Some(v) => v,
            None => panic!(
                "distributed cache has no artifact '{name}' of type {}",
                std::any::type_name::<T>()
            ),
        }
    }

    /// Names of all cached artifacts.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_typed_get() {
        let cache = DistributedCache::new()
            .with("centroids", vec![1.0f64, 2.0])
            .with("k", 11usize);
        assert_eq!(*cache.expect::<usize>("k"), 11);
        assert_eq!(cache.expect::<Vec<f64>>("centroids").len(), 2);
    }

    #[test]
    fn wrong_type_returns_none() {
        let cache = DistributedCache::new().with("k", 11usize);
        assert!(cache.get::<String>("k").is_none());
        assert!(cache.get::<usize>("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "no artifact 'rtree'")]
    fn expect_panics_on_missing() {
        let cache = DistributedCache::new();
        let _ = cache.expect::<Vec<u8>>("rtree");
    }

    #[test]
    fn shared_arc_is_not_cloned() {
        let data = Arc::new(vec![0u8; 1024]);
        let mut cache = DistributedCache::new();
        cache.insert_arc("blob", Arc::clone(&data));
        let got = cache.expect::<Vec<u8>>("blob");
        assert!(Arc::ptr_eq(&data, &got));
    }

    #[test]
    fn replace_and_names() {
        let mut cache = DistributedCache::new();
        cache.insert("x", 1u32);
        cache.insert("x", 2u32);
        assert_eq!(*cache.expect::<u32>("x"), 2);
        assert_eq!(cache.names().collect::<Vec<_>>(), vec!["x"]);
        assert!(!cache.is_empty());
    }
}
