//! Aggregate reporting for multi-job pipelines.
//!
//! DJ-Cluster's preprocessing runs "two MapReduce jobs executed in
//! pipeline: the output of the first job constitutes the input of the
//! second one" (§VII-A), and k-means submits one job per iteration. This
//! module accumulates the per-job statistics of such a chain into a single
//! report: total virtual time (cluster startup counted once), locality
//! totals and shuffle volume.

use crate::job::JobStats;
use std::time::Duration;

/// Accumulated statistics of a chain of jobs.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    stages: Vec<JobStats>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finished job.
    pub fn add(&mut self, stats: JobStats) {
        self.stages.push(stats);
    }

    /// The per-job statistics, in execution order.
    pub fn stages(&self) -> &[JobStats] {
        &self.stages
    }

    /// Number of jobs in the chain.
    pub fn num_jobs(&self) -> usize {
        self.stages.len()
    }

    /// Total real wall-clock time across jobs.
    pub fn real_elapsed(&self) -> Duration {
        self.stages.iter().map(|s| s.real_elapsed).sum()
    }

    /// Total virtual makespan across jobs, *excluding* cluster startup.
    pub fn sim_makespan_s(&self) -> f64 {
        self.stages.iter().map(|s| s.sim.makespan_s).sum()
    }

    /// Virtual end-to-end time: one cluster startup plus every job's
    /// makespan (daemons stay up between chained jobs, §VI).
    pub fn sim_total_s(&self) -> f64 {
        let startup = self.stages.first().map_or(0.0, |s| s.sim.cluster_startup_s);
        startup + self.sim_makespan_s()
    }

    /// Total bytes shuffled across all jobs.
    pub fn shuffle_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.sim.shuffle_bytes).sum()
    }

    /// Sum of map tasks across all jobs.
    pub fn map_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.map_tasks).sum()
    }

    /// `(data_local, rack_local, remote)` totals across all jobs.
    pub fn locality(&self) -> (usize, usize, usize) {
        self.stages.iter().fold((0, 0, 0), |acc, s| {
            (
                acc.0 + s.sim.data_local,
                acc.1 + s.sim.rack_local,
                acc.2 + s.sim.remote,
            )
        })
    }

    /// Total task-attempt retries across all jobs.
    pub fn retries(&self) -> u64 {
        self.stages.iter().map(|s| s.retries).sum()
    }

    /// Total map tasks re-executed after node crashes across all jobs.
    pub fn reexecuted_maps(&self) -> u64 {
        self.stages.iter().map(|s| s.reexecuted_maps).sum()
    }

    /// Total chunk reads that failed over past a dead or corrupt replica.
    pub fn failed_over_reads(&self) -> u64 {
        self.stages.iter().map(|s| s.failed_over_reads).sum()
    }

    /// Total intermediate bytes spilled to disk across all jobs.
    pub fn spilled_bytes(&self) -> u64 {
        self.counter_total(crate::counters::builtin::SPILLED_BYTES)
    }

    /// Total spill runs written across all jobs.
    pub fn spill_files(&self) -> u64 {
        self.counter_total(crate::counters::builtin::SPILL_FILES)
    }

    /// Total reduce groups spilled past the memory budget across all jobs.
    pub fn spilled_groups(&self) -> u64 {
        self.counter_total(crate::counters::builtin::SPILLED_GROUPS)
    }

    fn counter_total(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .map(|s| s.counters.get(name).copied().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimReport;
    use std::collections::BTreeMap;

    fn stats(name: &str, makespan: f64, startup: f64) -> JobStats {
        JobStats {
            name: name.into(),
            map_tasks: 4,
            reduce_tasks: 1,
            real_elapsed: Duration::from_millis(10),
            sim: SimReport {
                makespan_s: makespan,
                cluster_startup_s: startup,
                data_local: 3,
                rack_local: 1,
                remote: 0,
                shuffle_bytes: 100,
                ..SimReport::default()
            },
            retries: 1,
            reexecuted_maps: 2,
            failed_over_reads: 1,
            blacklisted_nodes: 0,
            io_retries: 0,
            torn_writes_detected: 0,
            runs_quarantined: 0,
            journal_replayed_tasks: 0,
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn empty_report() {
        let r = PipelineReport::new();
        assert_eq!(r.num_jobs(), 0);
        assert_eq!(r.sim_total_s(), 0.0);
        assert_eq!(r.real_elapsed(), Duration::ZERO);
    }

    #[test]
    fn accumulates_jobs_with_single_startup() {
        let mut r = PipelineReport::new();
        r.add(stats("filter-moving", 10.0, 25.0));
        r.add(stats("dedup", 5.0, 25.0));
        assert_eq!(r.num_jobs(), 2);
        assert_eq!(r.sim_makespan_s(), 15.0);
        assert_eq!(r.sim_total_s(), 40.0); // 25 counted once
        assert_eq!(r.shuffle_bytes(), 200);
        assert_eq!(r.map_tasks(), 8);
        assert_eq!(r.locality(), (6, 2, 0));
        assert_eq!(r.real_elapsed(), Duration::from_millis(20));
        assert_eq!(r.stages()[1].name, "dedup");
        assert_eq!(r.retries(), 2);
        assert_eq!(r.reexecuted_maps(), 4);
        assert_eq!(r.failed_over_reads(), 2);
    }
}
