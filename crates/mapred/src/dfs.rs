//! An in-memory distributed file system modeled on HDFS (§III of the
//! paper): files are split into fixed-size chunks, each chunk is
//! replicated (default 3×) with the rack-aware policy — first copy on the
//! writer node, second on a node of the same rack, third on a node of a
//! different rack — and a namenode-style metadata map records which
//! datanodes hold each chunk. The jobtracker later reads that map to keep
//! "the computation as close as possible to the data".

use crate::chaos::ChaosPlan;
use crate::hash::{fnv_hash, FnvHasher};
use crate::topology::{NodeId, Topology};
use gepeto_telemetry::Recorder;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::Arc;

/// Identifier of a stored chunk.
pub type BlockId = u64;

/// Errors from DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No file with that name exists.
    FileNotFound(String),
    /// A file with that name already exists.
    FileExists(String),
    /// Every replica of a chunk is unreadable (its datanode is dead or
    /// its copy fails checksum verification) — the HDFS "missing block"
    /// condition a client cannot recover from.
    AllReplicasLost(BlockId),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::FileNotFound(n) => write!(f, "dfs: file not found: {n}"),
            DfsError::FileExists(n) => write!(f, "dfs: file already exists: {n}"),
            DfsError::AllReplicasLost(b) => {
                write!(f, "dfs: all replicas of block {b} are lost or corrupt")
            }
        }
    }
}

impl std::error::Error for DfsError {}

/// XOR mask a corrupted replica's observed checksum is off by — any
/// nonzero constant works; verification only needs the mismatch.
const CORRUPTION_MASK: u64 = 0xdead_beef_dead_beef;

/// A stored chunk: its records (shared, so map tasks read without
/// copying), its byte size, its content checksum and the datanodes
/// holding replicas.
#[derive(Debug, Clone)]
pub struct Block<T> {
    /// Chunk identifier.
    pub id: BlockId,
    /// The records of this chunk (shared with readers).
    pub data: Arc<Vec<T>>,
    /// Serialized size of the chunk in bytes.
    pub bytes: usize,
    /// Content checksum computed at `put` (FNV-1a over the chunk's
    /// per-record serialized sizes — the stand-in for HDFS's CRC32 over
    /// the chunk bytes, since records are held in memory, not
    /// serialized). Reads verify each replica's observed checksum
    /// against this value and fail over on mismatch.
    pub checksum: u64,
    /// Replica locations; `replicas[0]` is the writer-local copy.
    pub replicas: Vec<NodeId>,
}

impl<T> Block<T> {
    /// The checksum a client observes when reading this chunk from
    /// `node`: the stored checksum, unless the chaos plan corrupted that
    /// replica, in which case it differs and verification fails.
    pub fn observed_checksum(&self, node: NodeId, chaos: &ChaosPlan) -> u64 {
        if chaos.is_corrupted(self.id, node) {
            self.checksum ^ CORRUPTION_MASK
        } else {
            self.checksum
        }
    }

    /// Whether the replica on `node` passes checksum verification.
    pub fn replica_intact(&self, node: NodeId, chaos: &ChaosPlan) -> bool {
        self.observed_checksum(node, chaos) == self.checksum
    }
}

#[derive(Debug, Clone)]
struct FileMeta {
    blocks: Vec<BlockId>,
    records: usize,
    bytes: usize,
}

/// The distributed file system, generic over the record type it stores.
///
/// Chunking is by *bytes*, not record count: the caller supplies a sizer
/// so that, e.g., GeoLife text lines fill a 64 MB chunk with however many
/// traces fit — exactly how the paper gets "2000 mapper tasks" from a
/// 128 GB dataset.
#[derive(Debug, Clone)]
pub struct Dfs<T> {
    topology: Topology,
    block_bytes: usize,
    replication: usize,
    files: BTreeMap<String, FileMeta>,
    blocks: BTreeMap<BlockId, Block<T>>,
    next_block: BlockId,
    telemetry: Recorder,
}

impl<T: Clone> Dfs<T> {
    /// A DFS over `topology` with the given chunk size in bytes and
    /// replication factor (HDFS default: 3, clamped to the node count).
    ///
    /// # Panics
    /// If `block_bytes` or `replication` is zero.
    pub fn new(topology: Topology, block_bytes: usize, replication: usize) -> Self {
        assert!(block_bytes > 0, "chunk size must be positive");
        assert!(replication > 0, "replication factor must be positive");
        Self {
            topology,
            block_bytes,
            replication,
            files: BTreeMap::new(),
            blocks: BTreeMap::new(),
            next_block: 0,
            telemetry: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder: chunk placements become
    /// `dfs.place` points, and chunk/file reads feed the
    /// `dfs.block.reads` counter and `dfs.read.bytes` histogram.
    pub fn telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Chunk size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Configured replication factor (before clamping to node count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The topology chunks are placed on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Writes a file, splitting `records` into chunks using `sizer` to
    /// measure each record's serialized size.
    pub fn put_with_sizer(
        &mut self,
        name: &str,
        records: Vec<T>,
        sizer: impl Fn(&T) -> usize,
    ) -> Result<(), DfsError> {
        self.put_from_iter(name, records, sizer)
    }

    /// Writes a file from a streaming record source, sealing each chunk as
    /// it fills — the write-side counterpart of [`Dfs::stream`]: peak
    /// extra memory is one chunk, never the whole file, so generators can
    /// pour millions of records straight into chunk placement.
    pub fn put_from_iter(
        &mut self,
        name: &str,
        records: impl IntoIterator<Item = T>,
        sizer: impl Fn(&T) -> usize,
    ) -> Result<(), DfsError> {
        if self.files.contains_key(name) {
            return Err(DfsError::FileExists(name.to_string()));
        }
        let mut total_records = 0usize;
        let mut total_bytes = 0usize;
        let mut block_ids = Vec::new();
        let mut current: Vec<T> = Vec::new();
        let mut current_bytes = 0usize;
        let mut current_sum = FnvHasher::default();
        for r in records {
            let b = sizer(&r).max(1);
            current.push(r);
            total_records += 1;
            current_bytes += b;
            total_bytes += b;
            current_sum.write(&(b as u64).to_le_bytes());
            if current_bytes >= self.block_bytes {
                block_ids.push(self.store_block(
                    name,
                    block_ids.len(),
                    std::mem::take(&mut current),
                    current_bytes,
                    std::mem::take(&mut current_sum).finish(),
                ));
                current_bytes = 0;
            }
        }
        if !current.is_empty() || block_ids.is_empty() {
            let checksum = current_sum.finish();
            block_ids.push(self.store_block(
                name,
                block_ids.len(),
                current,
                current_bytes,
                checksum,
            ));
        }
        self.files.insert(
            name.to_string(),
            FileMeta {
                blocks: block_ids,
                records: total_records,
                bytes: total_bytes,
            },
        );
        Ok(())
    }

    /// Writes a file assuming every record serializes to
    /// `bytes_per_record` bytes.
    pub fn put_fixed(
        &mut self,
        name: &str,
        records: Vec<T>,
        bytes_per_record: usize,
    ) -> Result<(), DfsError> {
        self.put_with_sizer(name, records, |_| bytes_per_record)
    }

    fn store_block(
        &mut self,
        file: &str,
        index: usize,
        data: Vec<T>,
        bytes: usize,
        content_sum: u64,
    ) -> BlockId {
        let id = self.next_block;
        self.next_block += 1;
        // Mix in file and chunk index so identical payloads in different
        // chunks still carry distinct checksums (HDFS checksums are
        // per-block files too).
        let checksum = fnv_hash(&(file, index, content_sum, data.len() as u64));
        let replicas = self.place_replicas(file, index);
        if self.telemetry.is_enabled() {
            let nodes = replicas
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",");
            self.telemetry.point(
                "dfs.place",
                bytes as f64,
                &[
                    ("file", file),
                    ("block", &id.to_string()),
                    ("replicas", &nodes),
                ],
            );
        }
        self.blocks.insert(
            id,
            Block {
                id,
                data: Arc::new(data),
                bytes,
                checksum,
                replicas,
            },
        );
        id
    }

    /// Rack-aware replica placement: writer-local first copy, same-rack
    /// second copy, off-rack third copy, then round-robin for higher
    /// replication factors. Writer nodes rotate per chunk so large files
    /// spread over the whole cluster (real HDFS rotates per *file*; per
    /// chunk gives the same steady-state balance for the single huge file
    /// the paper stores).
    ///
    /// The effective replication factor is **clamped to the node count**:
    /// a 3× policy on a 2-node cluster yields exactly 2 replicas, one per
    /// node — never duplicate copies on one datanode (matching HDFS,
    /// which leaves such blocks under-replicated rather than doubling
    /// up). The returned nodes are always pairwise distinct, and when the
    /// factor is ≥ 3 and a second rack has at least one node, replicas
    /// span at least two racks.
    pub fn place_replicas(&self, file: &str, index: usize) -> Vec<NodeId> {
        let n = self.topology.num_nodes();
        let r = self.replication.min(n);
        let writer = (fnv_hash(&file) as usize + index) % n;
        let mut replicas = vec![writer];
        if r >= 2 {
            let peers = self
                .topology
                .rack_peers(self.topology.rack_of(writer), writer);
            if let Some(&peer) = pick_deterministic(&peers, fnv_hash(&(file, index, "same-rack"))) {
                replicas.push(peer);
            }
        }
        if r >= 3 {
            let others = self.topology.other_racks(self.topology.rack_of(writer));
            let others: Vec<NodeId> = others
                .into_iter()
                .filter(|x| !replicas.contains(x))
                .collect();
            if let Some(&other) = pick_deterministic(&others, fnv_hash(&(file, index, "off-rack")))
            {
                replicas.push(other);
            }
        }
        // Fill any remaining replication round-robin over unused nodes.
        let mut candidate = (writer + 1) % n;
        while replicas.len() < r {
            if !replicas.contains(&candidate) {
                replicas.push(candidate);
            }
            candidate = (candidate + 1) % n;
        }
        replicas
    }

    /// The chunk ids of `name`, in file order.
    pub fn blocks_of(&self, name: &str) -> Result<&[BlockId], DfsError> {
        self.files
            .get(name)
            .map(|m| m.blocks.as_slice())
            .ok_or_else(|| DfsError::FileNotFound(name.to_string()))
    }

    /// The chunk with id `id`.
    ///
    /// # Panics
    /// If the id is unknown (engine-internal misuse).
    pub fn block(&self, id: BlockId) -> &Block<T> {
        let block = &self.blocks[&id];
        self.telemetry.count("dfs.block.reads", 1);
        self.telemetry.observe("dfs.read.bytes", block.bytes as u64);
        block
    }

    /// Reads a whole file back as a flat record vector.
    pub fn read(&self, name: &str) -> Result<Vec<T>, DfsError> {
        let ids = self.blocks_of(name)?;
        let mut out = Vec::with_capacity(self.num_records(name)?);
        for &id in ids {
            out.extend(self.block(id).data.iter().cloned());
        }
        Ok(out)
    }

    /// Streaming, chunk-at-a-time read path: yields each chunk's shared
    /// payload (`Arc` clone, no record copies) in file order without
    /// ever concatenating the file into one allocation — the out-of-core
    /// counterpart of [`Dfs::read`].
    pub fn stream(&self, name: &str) -> Result<ChunkStream<'_, T>, DfsError> {
        Ok(ChunkStream {
            dfs: self,
            ids: self.blocks_of(name)?.iter(),
            chaos: None,
            failovers: 0,
        })
    }

    /// Like [`Dfs::stream`], but every chunk goes through the verifying,
    /// failing-over read path ([`Dfs::read_block_verified`]); skipped
    /// replicas accumulate in [`ChunkStream::failovers`].
    pub fn stream_verified<'d>(
        &'d self,
        name: &str,
        chaos: &'d ChaosPlan,
    ) -> Result<ChunkStream<'d, T>, DfsError> {
        Ok(ChunkStream {
            dfs: self,
            ids: self.blocks_of(name)?.iter(),
            chaos: Some((chaos, chaos.now())),
            failovers: 0,
        })
    }

    /// Streams a file record-by-record, cloning one record at a time out
    /// of the current chunk — bounded memory regardless of file size.
    pub fn iter_records(&self, name: &str) -> Result<RecordStream<'_, T>, DfsError> {
        Ok(RecordStream {
            chunks: self.stream(name)?,
            current: None,
            index: 0,
        })
    }

    /// Replicas of chunk `id` that are *readable* under `chaos` at
    /// virtual time `at_s`: their datanode is alive and their copy passes
    /// checksum verification. Order follows the stored replica list
    /// (writer-local first), i.e. the client's failover order.
    pub fn readable_replicas(&self, id: BlockId, chaos: &ChaosPlan, at_s: f64) -> Vec<NodeId> {
        let block = &self.blocks[&id];
        block
            .replicas
            .iter()
            .copied()
            .filter(|&n| !chaos.is_dead(n, at_s) && block.replica_intact(n, chaos))
            .collect()
    }

    /// The verifying, failing-over read path: reads chunk `id` from the
    /// first replica whose datanode is alive and whose copy matches the
    /// chunk checksum, skipping dead or corrupt replicas — HDFS's client
    /// behavior. Returns the chunk, the replica served from, and how many
    /// replicas were skipped (the *failed-over reads*).
    ///
    /// # Errors
    /// [`DfsError::AllReplicasLost`] when no replica is readable.
    ///
    /// # Panics
    /// If the id is unknown (engine-internal misuse).
    pub fn read_block_verified(
        &self,
        id: BlockId,
        chaos: &ChaosPlan,
        at_s: f64,
    ) -> Result<(&Block<T>, NodeId, usize), DfsError> {
        let block = &self.blocks[&id];
        let mut skipped = 0usize;
        for &n in &block.replicas {
            if chaos.is_dead(n, at_s) || !block.replica_intact(n, chaos) {
                skipped += 1;
                continue;
            }
            // Injected transient read EIOs: the client retries the same
            // healthy replica with exponential virtual-time backoff
            // until the scripted streak passes (`max_eio_streak` bounds
            // it, so a healthy replica never fails permanently).
            if let Some(io) = chaos.io_plan() {
                let site = format!("dfs-read-{id}-{n}");
                let mut attempt = 0u32;
                while io.read_fault(&site, attempt).is_some() {
                    self.telemetry
                        .count(gepeto_telemetry::IO_RETRIES_COUNTER, 1);
                    chaos.advance(crate::commit::EIO_BACKOFF_S * f64::from(1u32 << attempt.min(6)));
                    attempt += 1;
                }
            }
            self.telemetry.count("dfs.block.reads", 1);
            self.telemetry.observe("dfs.read.bytes", block.bytes as u64);
            if skipped > 0 {
                self.telemetry
                    .count(gepeto_telemetry::FAILED_OVER_READS_COUNTER, skipped as u64);
            }
            return Ok((block, n, skipped));
        }
        Err(DfsError::AllReplicasLost(id))
    }

    /// Reads a whole file through the verifying, failing-over read path.
    /// Returns the records and the total number of failed-over reads.
    ///
    /// # Errors
    /// [`DfsError::FileNotFound`] for an unknown file, or
    /// [`DfsError::AllReplicasLost`] if some chunk has no readable
    /// replica left.
    pub fn read_verified(
        &self,
        name: &str,
        chaos: &ChaosPlan,
    ) -> Result<(Vec<T>, usize), DfsError> {
        let ids = self.blocks_of(name)?;
        let at_s = chaos.now();
        let mut out = Vec::with_capacity(self.num_records(name)?);
        let mut failovers = 0usize;
        for &id in ids {
            let (block, _, skipped) = self.read_block_verified(id, chaos, at_s)?;
            failovers += skipped;
            out.extend(block.data.iter().cloned());
        }
        Ok((out, failovers))
    }

    /// Namenode-style re-replication sweep: for every chunk, drops
    /// replicas on dead datanodes and replicas failing checksum
    /// verification, then places fresh copies on surviving nodes until
    /// the chunk is back to the replication factor (clamped to the live
    /// node count). Placement is rack-aware — racks not yet holding a
    /// healthy copy are preferred — and deterministic. Chunks with *no*
    /// healthy replica left cannot be healed; they are reported as lost
    /// and their metadata is left untouched so a later read yields
    /// [`DfsError::AllReplicasLost`].
    pub fn rereplicate(&mut self, chaos: &ChaosPlan) -> RereplicationReport {
        let at_s = chaos.now();
        let mut report = RereplicationReport::default();
        let num_nodes = self.topology.num_nodes();
        let live = chaos.live_nodes(num_nodes, at_s);
        let ids: Vec<BlockId> = self.blocks.keys().copied().collect();
        for id in ids {
            let block = &self.blocks[&id];
            let healthy: Vec<NodeId> = block
                .replicas
                .iter()
                .copied()
                .filter(|&n| !chaos.is_dead(n, at_s) && block.replica_intact(n, chaos))
                .collect();
            let dropped = block.replicas.len() - healthy.len();
            if dropped == 0 {
                continue;
            }
            if healthy.is_empty() {
                report.lost_blocks.push(id);
                continue;
            }
            report.dropped_replicas += dropped;
            // Candidate targets: live nodes without a healthy copy, and
            // never a node whose copy of this chunk is corrupt (its disk
            // already damaged this block once).
            let mut replicas = healthy;
            let healthy_count = replicas.len();
            let target = self.replication.min(
                live.iter()
                    .filter(|&&n| block.replica_intact(n, chaos))
                    .count(),
            );
            while replicas.len() < target {
                let candidates: Vec<NodeId> = live
                    .iter()
                    .copied()
                    .filter(|&n| !replicas.contains(&n) && block.replica_intact(n, chaos))
                    .collect();
                let covered: Vec<crate::topology::RackId> =
                    replicas.iter().map(|&n| self.topology.rack_of(n)).collect();
                let preferred: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&n| !covered.contains(&self.topology.rack_of(n)))
                    .collect();
                let pool = if preferred.is_empty() {
                    &candidates
                } else {
                    &preferred
                };
                match pick_deterministic(pool, fnv_hash(&(id, replicas.len(), "rereplicate"))) {
                    Some(&n) => replicas.push(n),
                    None => break,
                }
            }
            report.new_replicas += replicas.len() - healthy_count;
            report.healed_blocks += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.point(
                    "dfs.rereplicate",
                    replicas.len() as f64,
                    &[
                        ("block", &id.to_string()),
                        ("dropped", &dropped.to_string()),
                    ],
                );
            }
            self.blocks.get_mut(&id).expect("block exists").replicas = replicas;
        }
        report
    }

    /// Deletes a file and its chunks.
    pub fn delete(&mut self, name: &str) -> Result<(), DfsError> {
        let meta = self
            .files
            .remove(name)
            .ok_or_else(|| DfsError::FileNotFound(name.to_string()))?;
        for id in meta.blocks {
            self.blocks.remove(&id);
        }
        Ok(())
    }

    /// Whether `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// All file names in lexicographic order.
    pub fn ls(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// Number of records in `name`.
    pub fn num_records(&self, name: &str) -> Result<usize, DfsError> {
        self.files
            .get(name)
            .map(|m| m.records)
            .ok_or_else(|| DfsError::FileNotFound(name.to_string()))
    }

    /// Serialized size of `name` in bytes.
    pub fn file_bytes(&self, name: &str) -> Result<usize, DfsError> {
        self.files
            .get(name)
            .map(|m| m.bytes)
            .ok_or_else(|| DfsError::FileNotFound(name.to_string()))
    }

    /// Number of chunks of `name` — i.e. how many map tasks a job on this
    /// file will launch.
    pub fn num_blocks(&self, name: &str) -> Result<usize, DfsError> {
        Ok(self.blocks_of(name)?.len())
    }

    /// Chunk count per node (primary replicas only) — a balance metric.
    pub fn primary_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.topology.num_nodes()];
        for b in self.blocks.values() {
            if let Some(&first) = b.replicas.first() {
                counts[first] += 1;
            }
        }
        counts
    }
}

/// Chunk-at-a-time iterator over a file (see [`Dfs::stream`]). Each
/// `next()` yields one chunk's shared payload; dropping the stream
/// early releases nothing beyond the iterator itself, so consumers can
/// bound memory to a single chunk.
pub struct ChunkStream<'d, T> {
    dfs: &'d Dfs<T>,
    ids: std::slice::Iter<'d, BlockId>,
    /// Chaos plan and the frozen virtual read time, when verifying.
    chaos: Option<(&'d ChaosPlan, f64)>,
    failovers: usize,
}

impl<'d, T: Clone> Iterator for ChunkStream<'d, T> {
    type Item = Result<Arc<Vec<T>>, DfsError>;

    fn next(&mut self) -> Option<Self::Item> {
        let &id = self.ids.next()?;
        match self.chaos {
            None => Some(Ok(Arc::clone(&self.dfs.block(id).data))),
            Some((chaos, at_s)) => match self.dfs.read_block_verified(id, chaos, at_s) {
                Ok((block, _, skipped)) => {
                    self.failovers += skipped;
                    Some(Ok(Arc::clone(&block.data)))
                }
                Err(e) => Some(Err(e)),
            },
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ids.size_hint()
    }
}

impl<'d, T> ChunkStream<'d, T> {
    /// Replica skips accumulated so far on the verified path (always 0
    /// on the unverified one).
    pub fn failovers(&self) -> usize {
        self.failovers
    }
}

/// Record-at-a-time iterator over a file (see [`Dfs::iter_records`]):
/// holds one chunk at a time and clones records out of it on demand.
pub struct RecordStream<'d, T> {
    chunks: ChunkStream<'d, T>,
    current: Option<Arc<Vec<T>>>,
    index: usize,
}

impl<'d, T: Clone> Iterator for RecordStream<'d, T> {
    type Item = Result<T, DfsError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(chunk) = &self.current {
                if let Some(record) = chunk.get(self.index) {
                    self.index += 1;
                    return Some(Ok(record.clone()));
                }
                self.current = None;
            }
            match self.chunks.next()? {
                Ok(chunk) => {
                    self.current = Some(chunk);
                    self.index = 0;
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// What a [`Dfs::rereplicate`] sweep did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RereplicationReport {
    /// Chunks brought back to (clamped) full replication.
    pub healed_blocks: usize,
    /// Replicas discarded because their node died or their copy was
    /// corrupt.
    pub dropped_replicas: usize,
    /// Fresh replicas placed on surviving nodes.
    pub new_replicas: usize,
    /// Chunks with no healthy replica left — unrecoverable.
    pub lost_blocks: Vec<BlockId>,
}

fn pick_deterministic<T>(candidates: &[T], hash: u64) -> Option<&T> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[(hash % candidates.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs(block_bytes: usize) -> Dfs<u32> {
        Dfs::new(Topology::new(5, 2, 4), block_bytes, 3)
    }

    #[test]
    fn put_read_round_trip() {
        let mut d = dfs(40);
        let records: Vec<u32> = (0..100).collect();
        d.put_fixed("f", records.clone(), 4).unwrap();
        assert_eq!(d.read("f").unwrap(), records);
        assert_eq!(d.num_records("f").unwrap(), 100);
        assert_eq!(d.file_bytes("f").unwrap(), 400);
    }

    #[test]
    fn chunking_by_bytes() {
        let mut d = dfs(40); // 10 records of 4 bytes per chunk
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        assert_eq!(d.num_blocks("f").unwrap(), 10);
        // Halving the chunk size doubles the number of map tasks — the
        // paper's Table III lever.
        let mut d2 = dfs(20);
        d2.put_fixed("f", (0..100).collect(), 4).unwrap();
        assert_eq!(d2.num_blocks("f").unwrap(), 20);
    }

    #[test]
    fn stream_yields_chunks_in_file_order_without_copying() {
        let mut d = dfs(40); // 10 records per chunk
        let records: Vec<u32> = (0..100).collect();
        d.put_fixed("f", records.clone(), 4).unwrap();
        let chunks: Vec<Arc<Vec<u32>>> = d.stream("f").unwrap().map(|c| c.unwrap()).collect();
        assert_eq!(chunks.len(), 10);
        // Payloads are shared with the DFS, not copied.
        for (chunk, &id) in chunks.iter().zip(d.blocks_of("f").unwrap()) {
            assert!(Arc::ptr_eq(chunk, &d.block(id).data));
        }
        let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, records);
        assert!(d.stream("missing").is_err());
    }

    #[test]
    fn record_stream_matches_whole_file_read() {
        let mut d = dfs(40);
        let records: Vec<u32> = (0..100).collect();
        d.put_fixed("f", records.clone(), 4).unwrap();
        let streamed: Vec<u32> = d.iter_records("f").unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, d.read("f").unwrap());
        // Empty files stream zero records.
        d.put_fixed("empty", vec![], 4).unwrap();
        assert_eq!(d.iter_records("empty").unwrap().count(), 0);
    }

    #[test]
    fn verified_stream_counts_failovers() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let first_block = d.blocks_of("f").unwrap()[0];
        let victim = d.block(first_block).replicas[0];
        let chaos = ChaosPlan::none().crash_node(victim, 0.0);
        let mut stream = d.stream_verified("f", &chaos).unwrap();
        let total: usize = stream.by_ref().map(|c| c.unwrap().len()).sum();
        assert_eq!(total, 100);
        assert!(
            stream.failovers() > 0,
            "reads must fail over past the dead replica"
        );
    }

    #[test]
    fn put_from_iter_matches_vec_put() {
        let records: Vec<u32> = (0..1000).collect();
        let mut a = dfs(40);
        a.put_fixed("f", records.clone(), 4).unwrap();
        let mut b = dfs(40);
        b.put_from_iter("f", records.clone(), |_| 4).unwrap();
        assert_eq!(a.num_blocks("f").unwrap(), b.num_blocks("f").unwrap());
        assert_eq!(b.read("f").unwrap(), records);
        assert_eq!(b.file_bytes("f").unwrap(), 4_000);
    }

    #[test]
    fn empty_file_has_one_empty_chunk() {
        let mut d = dfs(40);
        d.put_fixed("empty", vec![], 4).unwrap();
        assert_eq!(d.num_blocks("empty").unwrap(), 1);
        assert_eq!(d.read("empty").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_put_rejected() {
        let mut d = dfs(40);
        d.put_fixed("f", vec![1], 4).unwrap();
        assert_eq!(
            d.put_fixed("f", vec![2], 4),
            Err(DfsError::FileExists("f".into()))
        );
    }

    #[test]
    fn missing_file_errors() {
        let d = dfs(40);
        assert!(matches!(d.read("nope"), Err(DfsError::FileNotFound(_))));
        assert!(matches!(
            d.blocks_of("nope"),
            Err(DfsError::FileNotFound(_))
        ));
    }

    #[test]
    fn delete_removes_blocks() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        assert!(d.exists("f"));
        d.delete("f").unwrap();
        assert!(!d.exists("f"));
        assert!(d.ls().is_empty());
        assert!(d.delete("f").is_err());
    }

    #[test]
    fn replication_is_rack_aware() {
        let mut d = dfs(8); // 2 records per chunk
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let topo = d.topology().clone();
        for &id in d.blocks_of("f").unwrap() {
            let b = d.block(id);
            assert_eq!(b.replicas.len(), 3);
            // All distinct nodes.
            let mut sorted = b.replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replica nodes");
            // Second replica same rack as writer, third on another rack.
            let writer_rack = topo.rack_of(b.replicas[0]);
            assert_eq!(topo.rack_of(b.replicas[1]), writer_rack);
            assert_ne!(topo.rack_of(b.replicas[2]), writer_rack);
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let mut d: Dfs<u32> = Dfs::new(Topology::new(2, 1, 1), 8, 3);
        d.put_fixed("f", (0..10).collect(), 4).unwrap();
        for &id in d.blocks_of("f").unwrap() {
            assert_eq!(d.block(id).replicas.len(), 2);
        }
    }

    #[test]
    fn primary_replicas_are_balanced() {
        let mut d = dfs(8);
        d.put_fixed("f", (0..1000).collect(), 4).unwrap();
        let dist = d.primary_distribution();
        let total: usize = dist.iter().sum();
        assert_eq!(total, 500); // 2 records per chunk
        for &c in &dist {
            // Round-robin writers: perfectly balanced within 1.
            assert!((99..=101).contains(&c), "unbalanced: {dist:?}");
        }
    }

    #[test]
    fn telemetry_sees_placements_and_reads() {
        let rec = Recorder::enabled();
        let mut d = dfs(40).telemetry(rec.clone());
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let placements: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| e.name == "dfs.place")
            .cloned()
            .collect();
        assert_eq!(placements.len(), 10);
        assert_eq!(placements[0].label("file"), Some("f"));
        assert_eq!(
            placements[0].label("replicas").unwrap().split(',').count(),
            3
        );
        d.read("f").unwrap();
        assert_eq!(rec.counter("dfs.block.reads"), 10);
        let h = rec.histogram("dfs.read.bytes").unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 400);
    }

    #[test]
    fn record_order_preserved_across_chunks() {
        let mut d = dfs(12); // 3 records per chunk
        let records: Vec<u32> = (0..31).collect();
        d.put_fixed("f", records.clone(), 4).unwrap();
        assert!(d.num_blocks("f").unwrap() > 1);
        assert_eq!(d.read("f").unwrap(), records);
    }

    #[test]
    fn chunks_get_distinct_content_checksums() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let sums: Vec<u64> = d
            .blocks_of("f")
            .unwrap()
            .iter()
            .map(|&id| d.block(id).checksum)
            .collect();
        assert!(sums.iter().all(|&s| s != 0));
        let mut unique = sums.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), sums.len(), "checksum collision: {sums:?}");
    }

    #[test]
    fn verified_read_fails_over_past_a_dead_replica() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let id = d.blocks_of("f").unwrap()[0];
        let primary = d.block(id).replicas[0];
        let chaos = ChaosPlan::none().crash_node(primary, 0.0);
        let (block, served_from, skipped) = d.read_block_verified(id, &chaos, 0.0).unwrap();
        assert_ne!(served_from, primary);
        assert_eq!(skipped, 1);
        assert_eq!(block.data, d.block(id).data);
        // The clean path reads from the primary with zero failovers.
        let (_, n, s) = d.read_block_verified(id, &ChaosPlan::none(), 0.0).unwrap();
        assert_eq!((n, s), (primary, 0));
    }

    #[test]
    fn verified_read_skips_corrupt_replicas() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let id = d.blocks_of("f").unwrap()[0];
        let replicas = d.block(id).replicas.clone();
        let chaos = ChaosPlan::none().corrupt_replica(id, replicas[0]);
        let (_, served_from, skipped) = d.read_block_verified(id, &chaos, 0.0).unwrap();
        assert_eq!(served_from, replicas[1]);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn all_replicas_lost_is_a_typed_error_not_a_panic() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let id = d.blocks_of("f").unwrap()[0];
        let mut chaos = ChaosPlan::none();
        for &n in &d.block(id).replicas {
            chaos = chaos.crash_node(n, 0.0);
        }
        assert_eq!(
            d.read_block_verified(id, &chaos, 0.0).unwrap_err(),
            DfsError::AllReplicasLost(id)
        );
    }

    #[test]
    fn read_verified_counts_failovers_and_bumps_telemetry() {
        let rec = Recorder::enabled();
        let mut d = dfs(40).telemetry(rec.clone());
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        // Kill node 0: every chunk with a replica there fails over.
        let chaos = ChaosPlan::none().crash_node(0, 0.0);
        let with_replica_on_0 = d
            .blocks_of("f")
            .unwrap()
            .iter()
            .filter(|&&id| d.block(id).replicas.contains(&0))
            .count();
        assert!(with_replica_on_0 > 0, "degenerate placement");
        let (records, failovers) = d.read_verified("f", &chaos).unwrap();
        assert_eq!(records, (0..100).collect::<Vec<u32>>());
        // Only chunks whose replica list *reaches* node 0 before a live
        // one count; with node 0 primary on some chunks this is nonzero.
        assert!(failovers > 0);
        assert_eq!(
            rec.counter(gepeto_telemetry::FAILED_OVER_READS_COUNTER),
            failovers as u64
        );
    }

    #[test]
    fn rereplicate_heals_onto_live_nodes() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let chaos = ChaosPlan::none().crash_node(1, 0.0);
        let report = d.rereplicate(&chaos);
        assert!(report.healed_blocks > 0);
        assert_eq!(report.dropped_replicas, report.new_replicas);
        assert!(report.lost_blocks.is_empty());
        let topo = d.topology().clone();
        for &id in d.blocks_of("f").unwrap() {
            let b = d.block(id);
            assert_eq!(b.replicas.len(), 3);
            assert!(!b.replicas.contains(&1), "replica left on dead node");
            let mut sorted = b.replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replicas after healing");
            let racks: std::collections::BTreeSet<_> =
                b.replicas.iter().map(|&n| topo.rack_of(n)).collect();
            assert!(racks.len() >= 2, "healing lost rack diversity");
        }
        // A healed DFS reads clean with zero failovers.
        let (_, failovers) = d.read_verified("f", &chaos).unwrap();
        assert_eq!(failovers, 0);
    }

    #[test]
    fn rereplicate_avoids_nodes_with_a_corrupt_copy() {
        let mut d: Dfs<u32> = Dfs::new(Topology::new(3, 1, 1), 400, 2);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let id = d.blocks_of("f").unwrap()[0];
        let replicas = d.block(id).replicas.clone();
        let spare: NodeId = (0..3).find(|n| !replicas.contains(n)).unwrap();
        // One replica's node dies, and the only spare node's disk already
        // corrupted its (future) copy — healing must not place there.
        let chaos = ChaosPlan::none()
            .crash_node(replicas[0], 0.0)
            .corrupt_replica(id, spare);
        let report = d.rereplicate(&chaos);
        assert_eq!(report.healed_blocks, 1);
        assert_eq!(report.new_replicas, 0); // nowhere safe to copy to
        assert_eq!(d.block(id).replicas, vec![replicas[1]]);
    }

    #[test]
    fn rereplicate_reports_unrecoverable_blocks() {
        let mut d = dfs(40);
        d.put_fixed("f", (0..100).collect(), 4).unwrap();
        let id = d.blocks_of("f").unwrap()[0];
        let replicas = d.block(id).replicas.clone();
        let mut chaos = ChaosPlan::none();
        for &n in &replicas {
            chaos = chaos.crash_node(n, 0.0);
        }
        let report = d.rereplicate(&chaos);
        assert!(report.lost_blocks.contains(&id));
        // Metadata untouched: a later read still yields the typed error.
        assert_eq!(d.block(id).replicas, replicas);
        assert_eq!(
            d.read_verified("f", &chaos).unwrap_err(),
            DfsError::AllReplicasLost(id)
        );
    }
}
