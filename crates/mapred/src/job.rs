//! Job submission and execution: the driver, the jobtracker's scheduling
//! and retry logic, and the shuffle.
//!
//! A [`MapReduceJob`] mirrors the paper's `Driver` class (§IV): it names
//! the input file, the mapper, the reducer, an optional combiner, and the
//! runtime configuration, then `run()`s the whole thing. Tasks execute in
//! parallel on the `gepeto-pool` work-stealing thread pool; every task's
//! wall time is measured and fed to [`crate::sim::simulate`] so the result
//! carries both the real elapsed time and the virtual-cluster makespan.
//!
//! Failure handling follows Hadoop: a task attempt may be killed (here:
//! deterministically injected via [`FailurePlan`]), and the jobtracker
//! reschedules it until `max_attempts` is exhausted, at which point the
//! job fails.

use crate::api::{Combiner, Emitter, Mapper, MrKey, MrValue, Reducer, TaskContext};
use crate::cache::DistributedCache;
use crate::chaos::ChaosPlan;
use crate::commit::{self, CommitError};
use crate::config::JobConfig;
use crate::counters::{builtin, phase, Counters};
use crate::dfs::{Dfs, DfsError};
use crate::hash::{default_partition, unit_hash, FnvBuildHasher};
use crate::journal::{JournalEntry, RunJournal};
use crate::sim::{simulate_chaos, MapTaskSim, ReduceTaskSim, SimError, SimReport};
use crate::spill::{
    load_artifact, quarantine_run, sanitize, seal_run, seal_run_at, verify_run, PartitionInput,
    SealStats, SpillCodec, SpillDir, SpillEncode, SpillRun, SpillSpec, SpilledPartition,
};
use crate::topology::Cluster;
use gepeto_telemetry::{LedgerScope, Recorder, Span};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic task-failure injection. A map attempt `(task, attempt)`
/// fails iff a fixed hash of `(job, phase, task, attempt, seed)` falls
/// below the configured probability — reproducible across runs, so tests
/// can assert exact retry counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlan {
    /// Probability that any single map attempt fails.
    pub map_fail_prob: f64,
    /// Probability that any single reduce attempt fails.
    pub reduce_fail_prob: f64,
    /// Seed mixed into the per-attempt hash.
    pub seed: u64,
    /// Attempts per task before the whole job is failed (Hadoop: 4).
    pub max_attempts: u32,
}

impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        Self {
            map_fail_prob: 0.0,
            reduce_fail_prob: 0.0,
            seed: 0,
            max_attempts: 4,
        }
    }

    /// Fail both phases' attempts with probability `p`.
    pub fn with_probability(p: f64, seed: u64) -> Self {
        Self {
            map_fail_prob: p,
            reduce_fail_prob: p,
            seed,
            max_attempts: 4,
        }
    }
}

/// Why a job did not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The input file could not be read (including every replica of an
    /// input chunk being lost to crashes or corruption).
    Dfs(DfsError),
    /// A task exhausted its attempts.
    TaskFailed {
        /// `"map"` or `"reduce"`.
        phase: &'static str,
        /// 0-based task index within the phase.
        task: usize,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// Tasks remained but every worker node was dead or blacklisted.
    ClusterDead,
    /// A spill file could not be written, read back, or decoded.
    Spill(String),
    /// Storage IO failed persistently (transient EIO retries exhausted,
    /// or a committed file stayed damaged through every rewrite) — the
    /// storage-aware retry policy re-executes the producing tasks.
    Io(String),
    /// The disk ran out of space (ENOSPC) — retryable with a larger
    /// memory budget, which shrinks the spill footprint.
    DiskFull(String),
}

impl From<DfsError> for JobError {
    fn from(e: DfsError) -> Self {
        JobError::Dfs(e)
    }
}

impl From<CommitError> for JobError {
    fn from(e: CommitError) -> Self {
        match e {
            CommitError::DiskFull(m) => JobError::DiskFull(m),
            other => JobError::Io(other.to_string()),
        }
    }
}

impl From<SimError> for JobError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::UnreadableBlock(b) => JobError::Dfs(DfsError::AllReplicasLost(b)),
            SimError::NoLiveNodes => JobError::ClusterDead,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Dfs(e) => write!(f, "{e}"),
            JobError::TaskFailed {
                phase,
                task,
                attempts,
            } => write!(f, "{phase} task {task} failed after {attempts} attempts"),
            JobError::ClusterDead => write!(f, "no live worker node left to run tasks"),
            JobError::Spill(e) => write!(f, "shuffle spill failed: {e}"),
            JobError::Io(e) => write!(f, "storage io failed: {e}"),
            JobError::DiskFull(e) => write!(f, "disk full: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Everything the driver learns from a finished job besides its output.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Job name (for reports).
    pub name: String,
    /// Number of map tasks (= number of input chunks).
    pub map_tasks: usize,
    /// Number of reduce tasks (0 for map-only jobs).
    pub reduce_tasks: usize,
    /// Real wall-clock time of the in-process parallel execution.
    pub real_elapsed: Duration,
    /// Virtual-cluster replay of the measured task times.
    pub sim: SimReport,
    /// Task attempts lost to injected failures and rescheduled
    /// (mirror of [`builtin::TASK_RETRIES`]).
    pub retries: u64,
    /// Completed map tasks re-run because their node crashed before the
    /// map phase finished, taking its locally-stored outputs with it.
    pub reexecuted_maps: u64,
    /// Successful map attempts that had to skip at least one dead or
    /// checksum-failing replica of their input chunk.
    pub failed_over_reads: u64,
    /// Nodes the jobtracker blacklisted after repeated task failures.
    pub blacklisted_nodes: u64,
    /// Injected transient IO errors absorbed by commit retry loops.
    pub io_retries: u64,
    /// Torn writes caught by seal-time/read-time verification.
    pub torn_writes_detected: u64,
    /// Spill runs quarantined (torn or corrupt) and rewritten.
    pub runs_quarantined: u64,
    /// Reduce partitions loaded from committed journal artifacts
    /// instead of being recomputed on resume.
    pub journal_replayed_tasks: u64,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
}

/// A finished job: its output pairs plus [`JobStats`].
#[derive(Debug, Clone)]
pub struct JobResult<K, V> {
    /// Output pairs, deterministically ordered (see the job types' docs).
    pub output: Vec<(K, V)>,
    /// Execution statistics.
    pub stats: JobStats,
}

/// Placeholder combiner type for jobs that do not use one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCombiner;

impl<K2: MrKey, V2: MrValue> Combiner<K2, V2> for NoCombiner {
    fn combine(&mut self, _key: &K2, values: &[V2]) -> Vec<V2> {
        values.to_vec()
    }
}

type PairBytes<K, V> = Arc<dyn Fn(&K, &V) -> usize + Send + Sync>;
type Partitioner<K> = Arc<dyn Fn(&K, usize) -> usize + Send + Sync>;

/// A full map+shuffle+reduce job.
///
/// Output ordering: reduce partitions in partition-index order; within a
/// partition, key groups in ascending key order — fully deterministic.
/// When the reducer opts out of the sorted-shuffle contract
/// ([`Reducer::SORTED_INPUT`]` = false`), key groups appear in
/// first-encounter order over the concatenated map outputs instead —
/// still deterministic, just not key-ascending; value order within each
/// group is identical on both paths.
pub struct MapReduceJob<'a, V1, M, R, C = NoCombiner>
where
    M: Mapper<V1>,
    R: Reducer<M::KOut, M::VOut>,
{
    name: String,
    cluster: &'a Cluster,
    dfs: &'a Dfs<V1>,
    input: String,
    mapper: M,
    reducer: R,
    combiner: Option<C>,
    num_reducers: usize,
    config: JobConfig,
    cache: DistributedCache,
    telemetry: Recorder,
    pair_bytes: Option<PairBytes<M::KOut, M::VOut>>,
    partitioner: Option<Partitioner<M::KOut>>,
    spill: Option<SpillSpec<M::KOut, M::VOut>>,
    journal: Option<DurableSpec<R::KOut, R::VOut>>,
}

/// Journal-backed durability for a job's reduce outputs: where to log
/// commits, and how to encode the output pairs into artifact files.
struct DurableSpec<K, V> {
    journal: Arc<RunJournal>,
    codec: SpillCodec<K, V>,
}

impl<'a, V1, M, R> MapReduceJob<'a, V1, M, R, NoCombiner>
where
    V1: MrValue,
    M: Mapper<V1>,
    R: Reducer<M::KOut, M::VOut>,
{
    /// A job reading `input` from `dfs`, with one reduce task per worker
    /// node by default.
    pub fn new(
        name: &str,
        cluster: &'a Cluster,
        dfs: &'a Dfs<V1>,
        input: &str,
        mapper: M,
        reducer: R,
    ) -> Self {
        Self {
            name: name.to_string(),
            cluster,
            dfs,
            input: input.to_string(),
            mapper,
            reducer,
            combiner: None,
            num_reducers: cluster.topology.num_nodes(),
            config: JobConfig::new(),
            cache: DistributedCache::new(),
            telemetry: Recorder::disabled(),
            pair_bytes: None,
            partitioner: None,
            spill: None,
            journal: None,
        }
    }
}

impl<'a, V1, M, R, C> MapReduceJob<'a, V1, M, R, C>
where
    V1: MrValue,
    M: Mapper<V1>,
    R: Reducer<M::KOut, M::VOut>,
    C: Combiner<M::KOut, M::VOut>,
{
    /// Adds a map-side combiner.
    pub fn with_combiner<C2>(self, combiner: C2) -> MapReduceJob<'a, V1, M, R, C2>
    where
        C2: Combiner<M::KOut, M::VOut>,
    {
        MapReduceJob {
            name: self.name,
            cluster: self.cluster,
            dfs: self.dfs,
            input: self.input,
            mapper: self.mapper,
            reducer: self.reducer,
            combiner: Some(combiner),
            num_reducers: self.num_reducers,
            config: self.config,
            cache: self.cache,
            telemetry: self.telemetry,
            pair_bytes: self.pair_bytes,
            partitioner: self.partitioner,
            spill: self.spill,
            journal: self.journal,
        }
    }

    /// Sets the number of reduce tasks (≥ 1; use [`MapOnlyJob`] for 0).
    pub fn reducers(mut self, n: usize) -> Self {
        assert!(n >= 1, "MapReduceJob needs >= 1 reducer");
        self.num_reducers = n;
        self
    }

    /// Sets the job configuration.
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the distributed cache.
    pub fn cache(mut self, cache: DistributedCache) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a telemetry recorder; phases, tasks, retries and
    /// scheduling decisions are captured through it. The default
    /// (disabled) recorder makes all instrumentation a no-op.
    pub fn telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Overrides the intermediate-pair size estimator used for shuffle
    /// accounting (default: `size_of::<(K, V)>()`).
    pub fn pair_bytes(
        mut self,
        f: impl Fn(&M::KOut, &M::VOut) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.pair_bytes = Some(Arc::new(f));
        self
    }

    /// Bounds the shuffle's per-partition memory to `bytes`: when a
    /// reduce partition's buffered pairs exceed the budget during the
    /// regroup step, they are stably sorted and spilled to a local run
    /// file, and the reduce task replays the partition as an external
    /// k-way merge — with output bit-identical to the in-memory sorted
    /// path. Requires the pair types to carry a derived codec; domain
    /// types without one use [`Self::memory_budget_with`]. A budget of
    /// `0` spills after every map task's contribution.
    ///
    /// Spilled partitions always take the sorted path: a reducer's
    /// [`Reducer::SORTED_INPUT`]` = false` opt-out applies only to
    /// partitions that stayed in memory.
    pub fn memory_budget(self, bytes: usize) -> Self
    where
        M::KOut: SpillEncode,
        M::VOut: SpillEncode,
    {
        self.memory_budget_with(bytes, SpillCodec::of())
    }

    /// Like [`Self::memory_budget`], with an explicit pair codec for
    /// types that do not implement [`SpillEncode`].
    pub fn memory_budget_with(mut self, bytes: usize, codec: SpillCodec<M::KOut, M::VOut>) -> Self {
        self.spill = Some(SpillSpec {
            codec,
            budget: Some(bytes),
        });
        self
    }

    /// Attaches only the spill codec; the budget then comes from the job
    /// config key `mapred.memory.budget` (no key → no spilling).
    pub fn spill_codec(mut self, codec: SpillCodec<M::KOut, M::VOut>) -> Self {
        self.spill = Some(SpillSpec {
            codec,
            budget: None,
        });
        self
    }

    /// Makes the job durable against the given run journal: every
    /// reduce partition's output is committed to the run directory's
    /// `partitions/` through the atomic commit protocol and journaled,
    /// spill runs are journaled as they seal, and on resume a partition
    /// whose committed artifact still verifies is loaded from disk
    /// (bumping [`builtin::JOURNAL_REPLAYED`]) instead of recomputed.
    ///
    /// Job names must be unique within a run directory — an iterative
    /// driver reusing one name across iterations would replay the wrong
    /// iteration's artifact.
    ///
    /// Requires the reduce output pair to carry a derived codec; use
    /// [`Self::durable_with`] for domain types without one.
    pub fn durable(self, journal: Arc<RunJournal>) -> Self
    where
        R::KOut: SpillEncode,
        R::VOut: SpillEncode,
    {
        self.durable_with(journal, SpillCodec::of())
    }

    /// Like [`Self::durable`], with an explicit codec for the reduce
    /// output pairs.
    pub fn durable_with(
        mut self,
        journal: Arc<RunJournal>,
        codec: SpillCodec<R::KOut, R::VOut>,
    ) -> Self {
        self.journal = Some(DurableSpec { journal, codec });
        self
    }

    /// Overrides the partitioner (default: deterministic hash modulo the
    /// reducer count — Hadoop's `HashPartitioner`). `f(key, num_reducers)`
    /// must return a value `< num_reducers`.
    pub fn partitioner(
        mut self,
        f: impl Fn(&M::KOut, usize) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.partitioner = Some(Arc::new(f));
        self
    }

    /// Runs the job to completion.
    pub fn run(self) -> Result<JobResult<R::KOut, R::VOut>, JobError> {
        let started = Instant::now();
        let counters = Counters::new();
        let job_ledger = LedgerScope::open();
        let monitor = self.telemetry.monitor();
        if let Some(m) = &monitor {
            m.job_started();
        }
        // The budget can come from the builder or the job config; either
        // way a codec must have been attached for spilling to engage.
        let active_spill = self.spill.as_ref().and_then(|s| {
            s.budget
                .or_else(|| self.config.get_usize("mapred.memory.budget"))
                .map(|budget| ActiveSpill {
                    codec: s.codec.clone(),
                    budget,
                })
        });
        let group_budget = active_spill.as_ref().map_or(usize::MAX, |s| s.budget);
        let job_span = self.telemetry.span(
            "job",
            &[
                ("job", &self.name),
                ("reducers", &self.num_reducers.to_string()),
            ],
        );
        let map_phase = run_map_phase(
            &self.name,
            self.cluster,
            self.dfs,
            &self.input,
            &self.mapper,
            self.combiner.as_ref(),
            self.num_reducers,
            &self.config,
            &self.cache,
            &counters,
            &self.telemetry,
            &job_span,
            self.pair_bytes.as_ref(),
            self.partitioner.clone(),
            active_spill.as_ref(),
            self.journal.as_ref().map(|d| d.journal.as_ref()),
        )?;

        // ---- shuffle: regroup per reduce partition, sort, group ----
        let MapPhaseOutput {
            partitions,
            sim_tasks: map_sim,
            partition_bytes,
        } = map_phase;

        // ---- reduce tasks, in parallel ----
        let shuffled: u64 = partition_bytes.iter().copied().sum();
        counters.inc(builtin::SHUFFLE_BYTES, shuffled);
        if let Some(m) = &monitor {
            m.add_shuffle_bytes(shuffled);
            m.add_reduce_tasks(partition_bytes.len() as u64);
        }
        let reduce_span = job_span.child("phase.reduce", &[]);
        let reducer_clones: Vec<R> = (0..partition_bytes.len())
            .map(|_| self.reducer.clone())
            .collect();
        let chaos = &self.cluster.chaos;
        let durable = self.journal.as_ref();
        let committed = durable
            .map(|d| d.journal.committed_reduces(&self.name))
            .unwrap_or_default();
        type ReduceResults<K, V> = Vec<Result<ReduceTaskOutput<K, V>, JobError>>;
        // Each task owns one partition, so spilled partitions run their
        // external merges concurrently (earlier-run-wins order is a
        // per-partition property and is untouched by the scheduling).
        let reduce_inputs: Vec<_> = partitions
            .into_iter()
            .zip(reducer_clones)
            .enumerate()
            .collect();
        let reduce_results: ReduceResults<R::KOut, R::VOut> =
            gepeto_pool::global().map_vec(reduce_inputs, |(task_id, (payload, mut reducer))| {
                // Resume fast path: a reduce partition whose committed
                // artifact still passes a verifying read is loaded from
                // disk instead of re-executed — no failure injection,
                // no reducer run, bit-identical output by construction.
                if let (Some(d), Some(art)) = (durable, committed.get(&task_id)) {
                    let t0 = Instant::now();
                    match load_artifact(&d.codec, &art.path, art.records as u64, art.checksum) {
                        Ok(output) => {
                            counters.inc(builtin::JOURNAL_REPLAYED, 1);
                            counters.inc(builtin::REDUCE_OUTPUT_RECORDS, output.len() as u64);
                            if let Some(m) = &monitor {
                                m.add_journal_replayed(1);
                                m.reduce_task_done();
                            }
                            self.telemetry.point(
                                "task.reduce.replayed",
                                task_id as f64,
                                &[("job", &self.name)],
                            );
                            return Ok(ReduceTaskOutput {
                                output,
                                host_secs: t0.elapsed().as_secs_f64(),
                                input_records: payload.records(),
                                failed_attempts: Vec::new(),
                            });
                        }
                        Err(_) => {
                            // The artifact rotted at rest since commit:
                            // quarantine it and fall through to a full
                            // recompute, which recommits below.
                            commit::quarantine(&art.path, chaos);
                            counters.inc(builtin::RUNS_QUARANTINED, 1);
                            if let Some(m) = &monitor {
                                m.add_runs_quarantined(1);
                            }
                        }
                    }
                }
                let fail = &self.cluster.failures;
                let mut attempt = 1u32;
                let mut failed_attempts = Vec::new();
                while unit_hash(&(
                    self.name.as_str(),
                    phase::REDUCE,
                    task_id,
                    attempt,
                    fail.seed,
                )) < fail.reduce_fail_prob
                {
                    counters.inc(builtin::TASK_RETRIES, 1);
                    if let Some(m) = &monitor {
                        m.add_task_retry();
                    }
                    self.telemetry.point(
                        "task.retry",
                        attempt as f64,
                        &[("phase", phase::REDUCE), ("task", &task_id.to_string())],
                    );
                    failed_attempts.push(failed_attempt_fraction(
                        self.name.as_str(),
                        phase::REDUCE,
                        task_id,
                        attempt,
                        fail.seed,
                    ));
                    attempt += 1;
                    if attempt > fail.max_attempts {
                        return Err(JobError::TaskFailed {
                            phase: phase::REDUCE,
                            task: task_id,
                            attempts: fail.max_attempts,
                        });
                    }
                }
                let task_span = reduce_span.child(
                    "task.reduce",
                    &[
                        ("task", &task_id.to_string()),
                        ("attempt", &attempt.to_string()),
                    ],
                );
                let t0 = Instant::now();
                let input_records = payload.records();
                counters.inc(builtin::REDUCE_INPUT_RECORDS, input_records);
                let ctx = TaskContext {
                    task_id,
                    attempt,
                    config: &self.config,
                    cache: &self.cache,
                    counters: &counters,
                };
                reducer.setup(&ctx);
                let mut out = Emitter::new();
                match payload {
                    PartitionInput::Memory(mut pairs) => {
                        let groups = if R::SORTED_INPUT {
                            {
                                // Sort-based grouping; stable sort keeps
                                // the map-task emission order within a
                                // key deterministic.
                                let _sort_span = task_span.child("phase.sort", &[]);
                                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                            }
                            group_sorted(pairs)
                        } else {
                            // The reducer declared order-insensitive
                            // input: group by hash in first-encounter
                            // order and skip the partition sort. Value
                            // order within a group is the same as on the
                            // sorted path (both scan the same
                            // concatenation, and the stable sort
                            // preserves the relative order of equal
                            // keys).
                            counters.inc(builtin::SORT_SKIPPED, 1);
                            group_unsorted(pairs)
                        };
                        counters.inc(builtin::REDUCE_INPUT_GROUPS, groups.len() as u64);
                        for (key, values) in &groups {
                            reducer.reduce(key, values, &mut out);
                        }
                    }
                    PartitionInput::Spilled(sp) => {
                        // Verifying read: every sealed run must still be
                        // structurally intact before the merge trusts
                        // its record count (seal time already
                        // deep-verified the payload). A damaged run is
                        // quarantined and the task fails with an IO
                        // error, which the storage-aware retry loop
                        // answers by re-executing the producing maps.
                        for run in &sp.runs {
                            if let Err(e) = verify_run(run, false) {
                                quarantine_run(run, &sp.dir, chaos);
                                counters.inc(builtin::RUNS_QUARANTINED, 1);
                                if let Some(m) = &monitor {
                                    m.add_runs_quarantined(1);
                                }
                                return Err(JobError::Io(format!(
                                    "spill run failed verification: {e}"
                                )));
                            }
                        }
                        // External k-way merge over the sorted runs:
                        // equal keys break toward the earlier run, which
                        // reproduces the stable sort of the in-memory
                        // concatenation — spilled output is bit-identical
                        // to the sorted path. (A `SORTED_INPUT = false`
                        // opt-out does not apply once a partition is on
                        // disk.)
                        let _merge_span =
                            task_span.child("phase.merge", &[("runs", &sp.runs.len().to_string())]);
                        let mut groups_count = 0u64;
                        let mut spilled_groups = 0u64;
                        crate::spill::merge_groups(&sp, group_budget, |key, values, spilled| {
                            groups_count += 1;
                            spilled_groups += u64::from(spilled);
                            reducer.reduce(&key, &values, &mut out);
                            Ok(())
                        })
                        .map_err(JobError::Spill)?;
                        counters.inc(builtin::REDUCE_INPUT_GROUPS, groups_count);
                        if spilled_groups > 0 {
                            counters.inc(builtin::SPILLED_GROUPS, spilled_groups);
                            if let Some(m) = &monitor {
                                m.add_spilled_groups(spilled_groups);
                            }
                        }
                    }
                }
                reducer.cleanup(&mut out);
                let host_secs = t0.elapsed().as_secs_f64();
                task_span.end();
                if let Some(m) = &monitor {
                    m.reduce_task_done();
                    m.observe("task.reduce.us", (host_secs * 1e6) as u64);
                }
                let output = out.into_pairs();
                counters.inc(builtin::REDUCE_OUTPUT_RECORDS, output.len() as u64);
                if let Some(d) = durable {
                    // Commit this partition's output as a run-directory
                    // artifact and journal it; a resumed run replays
                    // from here instead of re-reducing.
                    let art_path = d
                        .journal
                        .partitions_dir()
                        .join(format!("{}-p{task_id}.part", sanitize(&self.name)));
                    let (run, seal) = seal_run_at(&d.codec, &art_path, &output, chaos)?;
                    note_seal_stats(&seal, &counters, &monitor);
                    d.journal
                        .append(&JournalEntry::ReduceCommit {
                            job: self.name.clone(),
                            partition: task_id,
                            path: art_path.display().to_string(),
                            records: output.len(),
                            checksum: run.checksum,
                        })
                        .map_err(JobError::Io)?;
                }
                Ok(ReduceTaskOutput {
                    output,
                    host_secs,
                    input_records,
                    failed_attempts,
                })
            });

        reduce_span.end();
        let mut output = Vec::new();
        let mut reduce_sim = Vec::new();
        for (task_id, r) in reduce_results.into_iter().enumerate() {
            let r = r?;
            reduce_sim.push(ReduceTaskSim {
                host_secs: r.host_secs,
                shuffle_bytes: partition_bytes[task_id],
                records: r.input_records,
                failed_attempts: r.failed_attempts,
            });
            output.extend(r.output);
        }

        let sim = simulate_chaos(
            &self.cluster.topology,
            &self.cluster.sim,
            &self.cluster.chaos,
            self.cluster.chaos.now(),
            &map_sim,
            &reduce_sim,
            &self.telemetry,
        )?;
        self.cluster.chaos.advance(sim.makespan_s);
        job_span.end();
        note_job_mem(job_ledger, &counters);
        let stats = finish_stats(
            self.name,
            map_sim.len(),
            reduce_sim.len(),
            started.elapsed(),
            sim,
            &counters,
            &self.telemetry,
        );
        Ok(JobResult { output, stats })
    }
}

/// A map-only job (the paper's sampling and DJ-Cluster preprocessing:
/// "the reduce phase is not necessary").
///
/// Output ordering: map tasks in chunk order, pairs in emission order —
/// i.e. input order is preserved for record-to-record filters.
pub struct MapOnlyJob<'a, V1, M>
where
    M: Mapper<V1>,
{
    name: String,
    cluster: &'a Cluster,
    dfs: &'a Dfs<V1>,
    input: String,
    mapper: M,
    config: JobConfig,
    cache: DistributedCache,
    telemetry: Recorder,
    pair_bytes: Option<PairBytes<M::KOut, M::VOut>>,
}

impl<'a, V1, M> MapOnlyJob<'a, V1, M>
where
    V1: MrValue,
    M: Mapper<V1>,
{
    /// A map-only job reading `input` from `dfs`.
    pub fn new(name: &str, cluster: &'a Cluster, dfs: &'a Dfs<V1>, input: &str, mapper: M) -> Self {
        Self {
            name: name.to_string(),
            cluster,
            dfs,
            input: input.to_string(),
            mapper,
            config: JobConfig::new(),
            cache: DistributedCache::new(),
            telemetry: Recorder::disabled(),
            pair_bytes: None,
        }
    }

    /// Sets the job configuration.
    pub fn config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the distributed cache.
    pub fn cache(mut self, cache: DistributedCache) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a telemetry recorder (see [`MapReduceJob::telemetry`]).
    pub fn telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Overrides the output-pair size estimator.
    pub fn pair_bytes(
        mut self,
        f: impl Fn(&M::KOut, &M::VOut) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.pair_bytes = Some(Arc::new(f));
        self
    }

    /// Runs the job to completion.
    pub fn run(self) -> Result<JobResult<M::KOut, M::VOut>, JobError> {
        let started = Instant::now();
        let counters = Counters::new();
        let job_ledger = LedgerScope::open();
        if let Some(m) = self.telemetry.monitor() {
            m.job_started();
        }
        let job_span = self
            .telemetry
            .span("job", &[("job", &self.name), ("reducers", "0")]);
        let MapPhaseOutput {
            partitions,
            sim_tasks,
            ..
        } = run_map_phase(
            &self.name,
            self.cluster,
            self.dfs,
            &self.input,
            &self.mapper,
            None::<&NoCombiner>,
            0,
            &self.config,
            &self.cache,
            &counters,
            &self.telemetry,
            &job_span,
            self.pair_bytes.as_ref(),
            None,
            None,
            None,
        )?;
        let output = partitions
            .into_iter()
            .flat_map(PartitionInput::into_memory)
            .collect();
        let sim = simulate_chaos(
            &self.cluster.topology,
            &self.cluster.sim,
            &self.cluster.chaos,
            self.cluster.chaos.now(),
            &sim_tasks,
            &[],
            &self.telemetry,
        )?;
        self.cluster.chaos.advance(sim.makespan_s);
        job_span.end();
        note_job_mem(job_ledger, &counters);
        let stats = finish_stats(
            self.name,
            sim_tasks.len(),
            0,
            started.elapsed(),
            sim,
            &counters,
            &self.telemetry,
        );
        Ok(JobResult { output, stats })
    }
}

/// Runtime fraction a failed attempt consumed before dying: a
/// deterministic hash of the attempt identity mapped into `[0.2, 0.95)`,
/// so every injected failure charges a visible but partial share of the
/// task body to the virtual replay.
fn failed_attempt_fraction(
    job: &str,
    phase_name: &'static str,
    task: usize,
    attempt: u32,
    seed: u64,
) -> f64 {
    0.2 + 0.75 * unit_hash(&(job, phase_name, task, attempt, seed, "runtime"))
}

/// Closes the job-level memory ledger into the job counters: the
/// allocator peak folds as a high-water mark, turnover adds.
fn note_job_mem(ledger: LedgerScope, counters: &Counters) {
    let mem = ledger.close();
    counters.set_max(builtin::MEM_PEAK_BYTES, mem.peak_bytes);
    if mem.allocated > 0 {
        counters.inc(builtin::MEM_ALLOCATED_BYTES, mem.allocated);
        counters.inc(builtin::MEM_ALLOCS, mem.allocs);
    }
}

/// Folds the sim report's recovery tallies into the job counters,
/// mirrors everything into telemetry, and assembles the final
/// [`JobStats`].
///
/// The counters are the single source of truth: the sim's recovery
/// tallies are folded in once, and every `JobStats` mirror field is then
/// read back from the same snapshot — the two views cannot drift.
fn finish_stats(
    name: String,
    map_tasks: usize,
    reduce_tasks: usize,
    real_elapsed: Duration,
    sim: SimReport,
    counters: &Counters,
    telemetry: &Recorder,
) -> JobStats {
    for (counter, tally) in [
        (builtin::REEXECUTED_MAPS, sim.reexecuted_maps),
        (builtin::FAILED_OVER_READS, sim.failed_over_reads),
        (builtin::BLACKLISTED_NODES, sim.blacklisted_nodes),
    ] {
        if tally > 0 {
            counters.inc(counter, tally as u64);
        }
    }
    let counters_snapshot = counters.snapshot();
    if telemetry.is_enabled() {
        for (k, &v) in &counters_snapshot {
            if crate::counters::MAX_MERGED_COUNTERS.contains(&k.as_str()) {
                // High-water marks: raise the recorder's aggregate to
                // this job's watermark instead of summing watermarks
                // across jobs and iterations.
                let cur = telemetry.counter(k);
                if v > cur {
                    telemetry.count(k, v - cur);
                }
            } else {
                telemetry.count(k, v);
            }
        }
    }
    let mirror = |name: &str| counters_snapshot.get(name).copied().unwrap_or(0);
    if let Some(m) = telemetry.monitor() {
        // Fast-path counters accumulate per job; fold this job's totals
        // into the cumulative live gauges (shuffle bytes and retries are
        // already bumped in place on their hot paths).
        m.add_distance_evals(mirror(builtin::DISTANCE_EVALS));
        m.add_sorts_skipped(mirror(builtin::SORT_SKIPPED));
        m.add_shuffle_bytes_saved(mirror(builtin::SHUFFLE_BYTES_SAVED));
        m.job_finished();
    }
    JobStats {
        name,
        map_tasks,
        reduce_tasks,
        real_elapsed,
        retries: mirror(builtin::TASK_RETRIES),
        reexecuted_maps: mirror(builtin::REEXECUTED_MAPS),
        failed_over_reads: mirror(builtin::FAILED_OVER_READS),
        blacklisted_nodes: mirror(builtin::BLACKLISTED_NODES),
        io_retries: mirror(builtin::IO_RETRIES),
        torn_writes_detected: mirror(builtin::TORN_WRITES),
        runs_quarantined: mirror(builtin::RUNS_QUARANTINED),
        journal_replayed_tasks: mirror(builtin::JOURNAL_REPLAYED),
        sim,
        counters: counters_snapshot,
    }
}

struct ReduceTaskOutput<K, V> {
    output: Vec<(K, V)>,
    host_secs: f64,
    input_records: u64,
    failed_attempts: Vec<f64>,
}

/// A spill spec whose budget has been resolved (builder value or the
/// `mapred.memory.budget` config key).
struct ActiveSpill<K, V> {
    codec: SpillCodec<K, V>,
    budget: usize,
}

struct MapPhaseOutput<K, V> {
    /// One bucket per reduce partition (`num_reducers == 0` → a bucket
    /// per map task, preserving chunk order). Partitions that overflowed
    /// the memory budget live on disk as sorted spill runs.
    partitions: Vec<PartitionInput<K, V>>,
    sim_tasks: Vec<MapTaskSim>,
    partition_bytes: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn run_map_phase<V1, M, C>(
    job_name: &str,
    cluster: &Cluster,
    dfs: &Dfs<V1>,
    input: &str,
    mapper: &M,
    combiner: Option<&C>,
    num_reducers: usize,
    config: &JobConfig,
    cache: &DistributedCache,
    counters: &Counters,
    telemetry: &Recorder,
    job_span: &Span,
    pair_bytes: Option<&PairBytes<M::KOut, M::VOut>>,
    partitioner: Option<Partitioner<M::KOut>>,
    spill: Option<&ActiveSpill<M::KOut, M::VOut>>,
    journal: Option<&RunJournal>,
) -> Result<MapPhaseOutput<M::KOut, M::VOut>, JobError>
where
    V1: MrValue,
    M: Mapper<V1>,
    C: Combiner<M::KOut, M::VOut>,
{
    let block_ids = dfs.blocks_of(input)?.to_vec();
    let monitor = telemetry.monitor();
    if let Some(m) = &monitor {
        m.add_map_tasks(block_ids.len() as u64);
    }
    // Global record offset of each chunk.
    let mut offsets = Vec::with_capacity(block_ids.len());
    let mut acc = 0u64;
    for &id in &block_ids {
        offsets.push(acc);
        acc += dfs.block(id).data.len() as u64;
    }

    let default_pair_size = std::mem::size_of::<(M::KOut, M::VOut)>();
    let mapper_clones: Vec<(M, Option<C>)> = (0..block_ids.len())
        .map(|_| (mapper.clone(), combiner.cloned()))
        .collect();
    let map_span = job_span.child("phase.map", &[("tasks", &block_ids.len().to_string())]);
    type MapResults<K, V> = Vec<Result<MapTaskResult<K, V>, JobError>>;
    let map_inputs: Vec<_> = block_ids
        .iter()
        .copied()
        .zip(mapper_clones)
        .enumerate()
        .collect();
    let results: MapResults<M::KOut, M::VOut> =
        gepeto_pool::global().map_vec(map_inputs, |(task_id, (block_id, (mut m, combiner)))| {
            let fail = &cluster.failures;
            let mut attempt = 1u32;
            let mut failed_attempts = Vec::new();
            while unit_hash(&(job_name, phase::MAP, task_id, attempt, fail.seed))
                < fail.map_fail_prob
            {
                counters.inc(builtin::TASK_RETRIES, 1);
                if let Some(m) = &monitor {
                    m.add_task_retry();
                }
                telemetry.point(
                    "task.retry",
                    attempt as f64,
                    &[("phase", phase::MAP), ("task", &task_id.to_string())],
                );
                failed_attempts.push(failed_attempt_fraction(
                    job_name,
                    phase::MAP,
                    task_id,
                    attempt,
                    fail.seed,
                ));
                attempt += 1;
                if attempt > fail.max_attempts {
                    return Err(JobError::TaskFailed {
                        phase: phase::MAP,
                        task: task_id,
                        attempts: fail.max_attempts,
                    });
                }
            }
            let block = dfs.block(block_id);
            let task_span = map_span.child(
                "task.map",
                &[
                    ("task", &task_id.to_string()),
                    ("block", &block_id.to_string()),
                    ("attempt", &attempt.to_string()),
                ],
            );
            let t0 = Instant::now();
            let ctx = TaskContext {
                task_id,
                attempt,
                config,
                cache,
                counters,
            };
            m.setup(&ctx);
            // Most mappers emit at most one pair per record; pre-sizing to
            // the chunk length avoids growth reallocations in the hot loop.
            let mut out = Emitter::with_capacity(block.data.len());
            for (j, record) in block.data.iter().enumerate() {
                m.map(offsets[task_id] + j as u64, record, &mut out);
            }
            m.cleanup(&mut out);
            counters.inc(builtin::MAP_INPUT_RECORDS, block.data.len() as u64);
            counters.inc(builtin::MAP_OUTPUT_RECORDS, out.len() as u64);

            // Partition (and optionally combine) this task's output.
            let pairs = out.into_pairs();
            let (buckets, bytes) = if num_reducers == 0 {
                let sz: u64 = pairs
                    .iter()
                    .map(|(k, v)| pair_bytes.map_or(default_pair_size, |f| f(k, v)) as u64)
                    .sum();
                (vec![pairs], vec![sz])
            } else {
                let per_bucket = pairs.len().div_ceil(num_reducers);
                let mut buckets: Vec<Vec<(M::KOut, M::VOut)>> = (0..num_reducers)
                    .map(|_| Vec::with_capacity(per_bucket))
                    .collect();
                for (k, v) in pairs {
                    let p = match &partitioner {
                        Some(f) => {
                            let p = f(&k, num_reducers);
                            assert!(
                                p < num_reducers,
                                "partitioner returned {p} for {num_reducers} reducers"
                            );
                            p
                        }
                        None => default_partition(&k, num_reducers),
                    };
                    buckets[p].push((k, v));
                }
                if let Some(c) = &combiner {
                    let _combine_span = task_span.child("phase.combine", &[]);
                    for bucket in buckets.iter_mut() {
                        *bucket = run_combiner(c, std::mem::take(bucket), counters);
                    }
                }
                counters.inc(
                    builtin::SPILLED_RECORDS,
                    buckets.iter().map(|b| b.len() as u64).sum(),
                );
                let bytes = buckets
                    .iter()
                    .map(|b| {
                        b.iter()
                            .map(|(k, v)| pair_bytes.map_or(default_pair_size, |f| f(k, v)) as u64)
                            .sum()
                    })
                    .collect();
                (buckets, bytes)
            };
            let host_secs = t0.elapsed().as_secs_f64();
            task_span.end();
            if let Some(m) = &monitor {
                m.map_task_done();
                m.observe("task.map.us", (host_secs * 1e6) as u64);
            }
            Ok(MapTaskResult {
                buckets,
                bucket_bytes: bytes,
                sim: MapTaskSim {
                    host_secs,
                    input_bytes: block.bytes as u64,
                    records: block.data.len() as u64,
                    block: block_id,
                    replicas: block.replicas.clone(),
                    corrupted: block
                        .replicas
                        .iter()
                        .map(|&n| cluster.chaos.is_corrupted(block_id, n))
                        .collect(),
                    failed_attempts,
                },
            })
        });

    map_span.end();
    let num_partitions = if num_reducers == 0 {
        block_ids.len()
    } else {
        num_reducers
    };
    // Regrouping map outputs into reduce partitions is the in-process
    // equivalent of the shuffle's copy step.
    let _shuffle_span = (num_reducers > 0).then(|| job_span.child("phase.shuffle", &[]));
    let mut ok_results = Vec::with_capacity(block_ids.len());
    for r in results {
        ok_results.push(r?);
    }
    let mut partition_bytes = vec![0u64; num_partitions];
    let mut sim_tasks = Vec::with_capacity(block_ids.len());
    // Highest buffered intermediate size the copy step's own accounting
    // saw — the value the spill trigger compares against the budget.
    let mut acct_peak = 0u64;
    let partitions: Vec<PartitionInput<M::KOut, M::VOut>> = if num_reducers == 0 {
        let mut partitions = Vec::with_capacity(num_partitions);
        for (task_id, r) in ok_results.into_iter().enumerate() {
            sim_tasks.push(r.sim);
            partition_bytes[task_id] = r.bucket_bytes[0];
            partitions.push(PartitionInput::Memory(
                r.buckets.into_iter().next().unwrap(),
            ));
        }
        acct_peak = partition_bytes.iter().copied().max().unwrap_or(0);
        partitions
    } else if let Some(sp) = spill {
        // Memory-bounded copy step: partitions grow only until the
        // budget; past it the buffer is stably sorted and spilled as one
        // run. Runs are consecutive chunks of the map-order
        // concatenation, which is what lets the reduce-side merge
        // reproduce the stable sort exactly.
        let mut bufs: Vec<Vec<(M::KOut, M::VOut)>> =
            (0..num_partitions).map(|_| Vec::new()).collect();
        let mut mem_bytes = vec![0u64; num_partitions];
        let mut runs: Vec<Vec<SpillRun>> = vec![Vec::new(); num_partitions];
        let mut spill_dir: Option<Arc<SpillDir>> = None;
        for r in ok_results {
            sim_tasks.push(r.sim);
            for (p, bucket) in r.buckets.into_iter().enumerate() {
                partition_bytes[p] += r.bucket_bytes[p];
                mem_bytes[p] += r.bucket_bytes[p];
                acct_peak = acct_peak.max(mem_bytes[p]);
                bufs[p].extend(bucket);
                if mem_bytes[p] > sp.budget as u64 && !bufs[p].is_empty() {
                    let dir =
                        lazy_spill_dir(&mut spill_dir, job_name, config, &cluster.chaos, journal)?;
                    runs[p].push(spill_buffer(
                        &mut bufs[p],
                        sp,
                        &dir,
                        &cluster.chaos,
                        journal,
                        job_name,
                        counters,
                        &monitor,
                        mem_bytes[p],
                    )?);
                    mem_bytes[p] = 0;
                }
            }
        }
        let mut partitions = Vec::with_capacity(num_partitions);
        for ((mut buf, mut partition_runs), tail_estimate) in
            bufs.into_iter().zip(runs).zip(mem_bytes)
        {
            if partition_runs.is_empty() {
                partitions.push(PartitionInput::Memory(buf));
            } else {
                // Once any run exists the whole partition merges from
                // disk, so the in-memory tail becomes the final run.
                if !buf.is_empty() {
                    let dir =
                        lazy_spill_dir(&mut spill_dir, job_name, config, &cluster.chaos, journal)?;
                    partition_runs.push(spill_buffer(
                        &mut buf,
                        sp,
                        &dir,
                        &cluster.chaos,
                        journal,
                        job_name,
                        counters,
                        &monitor,
                        tail_estimate,
                    )?);
                }
                partitions.push(PartitionInput::Spilled(SpilledPartition {
                    runs: partition_runs,
                    codec: sp.codec.clone(),
                    dir: Arc::clone(spill_dir.as_ref().expect("spill dir exists once runs do")),
                }));
            }
        }
        partitions
    } else {
        // Pre-size every partition to its exact concatenated length so
        // the copy step never reallocates mid-extend.
        let mut partitions: Vec<Vec<(M::KOut, M::VOut)>> = (0..num_partitions)
            .map(|p| Vec::with_capacity(ok_results.iter().map(|r| r.buckets[p].len()).sum()))
            .collect();
        for r in ok_results {
            sim_tasks.push(r.sim);
            for (p, bucket) in r.buckets.into_iter().enumerate() {
                partitions[p].extend(bucket);
                partition_bytes[p] += r.bucket_bytes[p];
            }
        }
        acct_peak = partition_bytes.iter().copied().max().unwrap_or(0);
        partitions.into_iter().map(PartitionInput::Memory).collect()
    };
    // Budget-vs-actual accounting: what the spill trigger compared
    // against the budget, and how far past it the buffers got. The
    // budgeted path can overshoot by up to one map task's bucket — the
    // granularity at which the trigger runs.
    if let Some(sp) = spill {
        counters.set_max(builtin::MEM_BUDGET_BYTES, sp.budget as u64);
        let over = acct_peak.saturating_sub(sp.budget as u64);
        if over > 0 {
            counters.set_max(builtin::MEM_PEAK_OVER_BUDGET, over);
        }
    }
    if acct_peak > 0 {
        counters.set_max(builtin::MEM_ACCOUNTED_PEAK, acct_peak);
    }
    Ok(MapPhaseOutput {
        partitions,
        sim_tasks,
        partition_bytes,
    })
}

/// Creates the job's spill directory on first use. The root prefers the
/// run directory's `spill/` (durable runs), then the `mapred.spill.dir`
/// config key, then the OS temp dir; `mapred.run.id` namespaces the
/// directory name so concurrent runs sharing a root never collide.
fn lazy_spill_dir(
    slot: &mut Option<Arc<SpillDir>>,
    job_name: &str,
    config: &JobConfig,
    chaos: &ChaosPlan,
    journal: Option<&RunJournal>,
) -> Result<Arc<SpillDir>, JobError> {
    if slot.is_none() {
        let root = journal
            .map(|j| j.spill_root())
            .or_else(|| config.get("mapred.spill.dir").map(PathBuf::from))
            .unwrap_or_else(std::env::temp_dir);
        let run_id = config.get("mapred.run.id");
        *slot = Some(Arc::new(
            SpillDir::create_in(&root, job_name, run_id, chaos.io_plan().cloned())
                .map_err(JobError::Spill)?,
        ));
    }
    Ok(Arc::clone(slot.as_ref().unwrap()))
}

/// Folds one seal's storage-fault tallies into the job counters and the
/// live monitor.
fn note_seal_stats(
    seal: &SealStats,
    counters: &Counters,
    monitor: &Option<Arc<gepeto_telemetry::Monitor>>,
) {
    if seal.io_retries > 0 {
        counters.inc(builtin::IO_RETRIES, seal.io_retries);
    }
    if seal.torn_detected > 0 {
        counters.inc(builtin::TORN_WRITES, seal.torn_detected);
    }
    if seal.quarantined > 0 {
        counters.inc(builtin::RUNS_QUARANTINED, seal.quarantined);
    }
    if seal.stall_ms > 0 {
        counters.inc(builtin::IO_STALL_MS, seal.stall_ms);
    }
    if let Some(m) = monitor {
        m.add_io_retries(seal.io_retries);
        m.add_torn_writes(seal.torn_detected);
        m.add_runs_quarantined(seal.quarantined);
        m.add_io_stall_ms(seal.stall_ms);
    }
}

/// Stably sorts one partition buffer, seals it as a verified spill run
/// (absorbing injected storage faults), journals the seal on durable
/// runs, and accounts the spill in counters and the live monitor.
///
/// `estimated_bytes` is the buffered size the spill trigger believed it
/// was flushing; its gap to the run's real encoded size accumulates in
/// [`builtin::SPILL_ESTIMATE_ERROR`] so chronically wrong estimators
/// are visible.
#[allow(clippy::too_many_arguments)]
fn spill_buffer<K: MrKey, V: MrValue>(
    buf: &mut Vec<(K, V)>,
    spill: &ActiveSpill<K, V>,
    dir: &SpillDir,
    chaos: &ChaosPlan,
    journal: Option<&RunJournal>,
    job_name: &str,
    counters: &Counters,
    monitor: &Option<Arc<gepeto_telemetry::Monitor>>,
    estimated_bytes: u64,
) -> Result<SpillRun, JobError> {
    buf.sort_by(|a, b| a.0.cmp(&b.0));
    let (run, seal) = seal_run(&spill.codec, dir, "run", buf, chaos)?;
    note_seal_stats(&seal, counters, monitor);
    counters.inc(
        builtin::SPILL_ESTIMATE_ERROR,
        estimated_bytes.abs_diff(run.bytes),
    );
    if let Some(j) = journal {
        j.append(&JournalEntry::SpillSealed {
            job: job_name.to_string(),
            path: run.path.display().to_string(),
            records: run.records as usize,
            bytes: run.bytes as usize,
            checksum: run.checksum,
        })
        .map_err(JobError::Io)?;
    }
    buf.clear();
    buf.shrink_to_fit();
    counters.inc(builtin::SPILLED_BYTES, run.bytes);
    counters.inc(builtin::SPILL_FILES, 1);
    if let Some(m) = monitor {
        m.add_spilled_bytes(run.bytes);
        m.add_spill_files(1);
    }
    Ok(run)
}

struct MapTaskResult<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    bucket_bytes: Vec<u64>,
    sim: MapTaskSim,
}

/// Groups a key-sorted pair vector into `(key, values)` runs, *moving*
/// the values out of the input — no per-value clone. Equal keys must be
/// adjacent (guaranteed after the stable sort), and the stable sort means
/// each run's values keep their map-task emission order.
pub fn group_sorted<K: MrKey, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

/// Groups an *unsorted* pair vector by key in first-encounter order,
/// moving the values. The input is the deterministic concatenation of map
/// outputs in task order, so both the group order and each group's value
/// order are reproducible across runs — and the value order is identical
/// to what the stable-sort path produces.
pub fn group_unsorted<K: MrKey, V>(pairs: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    let mut index: HashMap<K, usize, FnvBuildHasher> =
        HashMap::with_capacity_and_hasher(16, FnvBuildHasher::default());
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in pairs {
        match index.get(&k) {
            Some(&i) => groups[i].1.push(v),
            None => {
                index.insert(k.clone(), groups.len());
                groups.push((k, vec![v]));
            }
        }
    }
    groups
}

/// Sorts one bucket by key, groups runs, and applies the combiner to each
/// group.
fn run_combiner<K: MrKey, V: MrValue, C: Combiner<K, V>>(
    combiner: &C,
    mut pairs: Vec<(K, V)>,
    counters: &Counters,
) -> Vec<(K, V)> {
    if pairs.is_empty() {
        return pairs;
    }
    counters.inc(builtin::COMBINE_INPUT_RECORDS, pairs.len() as u64);
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut c = combiner.clone();
    let mut out = Vec::with_capacity(pairs.len());
    for (key, values) in group_sorted(pairs) {
        for v in c.combine(&key, &values) {
            out.push((key.clone(), v));
        }
    }
    counters.inc(builtin::COMBINE_OUTPUT_RECORDS, out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::FnMapper;

    /// Word-count style: map emits (word, 1), reduce sums.
    #[derive(Clone)]
    struct SumReducer;
    impl Reducer<String, u64> for SumReducer {
        type KOut = String;
        type VOut = u64;
        fn reduce(&mut self, key: &String, values: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(key.clone(), values.iter().sum());
        }
    }

    #[derive(Clone)]
    struct SumCombiner;
    impl Combiner<String, u64> for SumCombiner {
        fn combine(&mut self, _key: &String, values: &[u64]) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn word_dfs(cluster: &Cluster) -> Dfs<String> {
        let mut dfs = Dfs::new(cluster.topology.clone(), 32, 3);
        let words: Vec<String> = "a b c a b a d e a b c d"
            .split_whitespace()
            .map(String::from)
            .collect();
        dfs.put_fixed("words", words, 8).unwrap();
        dfs
    }

    fn tokenizer() -> impl Mapper<String, KOut = String, VOut = u64> {
        FnMapper::new(|_off: u64, w: &String, out: &mut Emitter<String, u64>| {
            out.emit(w.clone(), 1);
        })
    }

    fn word_counts(result: &JobResult<String, u64>) -> BTreeMap<String, u64> {
        result.output.iter().cloned().collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        let counts = word_counts(&result);
        assert_eq!(counts["a"], 4);
        assert_eq!(counts["b"], 3);
        assert_eq!(counts["c"], 2);
        assert_eq!(counts["d"], 2);
        assert_eq!(counts["e"], 1);
        assert!(result.stats.map_tasks > 1, "want multiple chunks");
        assert_eq!(result.stats.reduce_tasks, 2);
        assert_eq!(result.stats.counters[builtin::MAP_INPUT_RECORDS], 12);
        assert_eq!(result.stats.counters[builtin::MAP_OUTPUT_RECORDS], 12);
        assert_eq!(result.stats.counters[builtin::REDUCE_OUTPUT_RECORDS], 5);
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let run = || {
            MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
                .reducers(3)
                .run()
                .unwrap()
                .output
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spilled_shuffle_output_is_bit_identical_to_in_memory() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let in_memory = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        // A 1-byte budget forces a spill after every map contribution.
        let spilled = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .memory_budget(1)
            .run()
            .unwrap();
        assert_eq!(in_memory.output, spilled.output);
        assert!(spilled.stats.counters[builtin::SPILL_FILES] > 0);
        assert!(spilled.stats.counters[builtin::SPILLED_BYTES] > 0);
        assert!(!in_memory.stats.counters.contains_key(builtin::SPILL_FILES));
    }

    #[test]
    fn memory_budget_from_config_key_engages_spilling() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let config = JobConfig::new().set("mapred.memory.budget", "1");
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .config(config)
            .spill_codec(SpillCodec::of())
            .run()
            .unwrap();
        assert!(result.stats.counters[builtin::SPILL_FILES] > 0);
        let counts = word_counts(&result);
        assert_eq!(counts["a"], 4);
        assert_eq!(counts["e"], 1);
    }

    #[test]
    fn oversized_groups_spill_and_reduce_correctly() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        // Budget 1 byte: every partition spills AND every multi-value
        // group overflows to its own file before the reduce call (a
        // group's first value always stays in memory, so the lone "e"
        // never overflows).
        let spilled = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(1)
            .memory_budget(1)
            .run()
            .unwrap();
        assert_eq!(spilled.stats.counters[builtin::SPILLED_GROUPS], 4);
        let counts = word_counts(&spilled);
        assert_eq!(counts["a"], 4);
        assert_eq!(counts["b"], 3);
    }

    #[test]
    fn spill_with_combiner_still_matches_in_memory() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let in_memory = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .with_combiner(SumCombiner)
            .reducers(2)
            .run()
            .unwrap();
        let spilled = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .with_combiner(SumCombiner)
            .reducers(2)
            .memory_budget(1)
            .run()
            .unwrap();
        assert_eq!(in_memory.output, spilled.output);
    }

    #[test]
    fn generous_budget_never_spills() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .memory_budget(1 << 30)
            .run()
            .unwrap();
        assert!(!result.stats.counters.contains_key(builtin::SPILL_FILES));
        assert_eq!(word_counts(&result)["a"], 4);
    }

    #[test]
    fn budgeted_runs_account_their_shuffle_peak_against_the_budget() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let budget = 64;
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .memory_budget(budget)
            .run()
            .unwrap();
        let c = &result.stats.counters;
        assert_eq!(c[builtin::MEM_BUDGET_BYTES], budget as u64);
        let peak = c[builtin::MEM_ACCOUNTED_PEAK];
        assert!(peak > 0);
        // With a 64-byte budget the shuffle spills, and the overshoot is
        // exactly how far the accounted peak passed the budget.
        let over = c[builtin::MEM_PEAK_OVER_BUDGET];
        assert_eq!(over, peak - budget as u64);
        // Every sealed run records its estimate error (possibly zero).
        assert!(c.contains_key(builtin::SPILL_ESTIMATE_ERROR));
        // The tracking allocator always observes real heap traffic.
        assert!(c[builtin::MEM_PEAK_BYTES] > 0);
        assert!(c[builtin::MEM_ALLOCATED_BYTES] > 0);
        assert!(c[builtin::MEM_ALLOCS] > 0);

        // Unbudgeted runs still report an accounted peak, but no budget
        // and no overshoot.
        let free = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        let fc = &free.stats.counters;
        assert!(!fc.contains_key(builtin::MEM_BUDGET_BYTES));
        assert!(!fc.contains_key(builtin::MEM_PEAK_OVER_BUDGET));
        assert!(fc[builtin::MEM_ACCOUNTED_PEAK] > 0);
    }

    #[test]
    fn spilled_shuffle_survives_injected_storage_faults() {
        use crate::chaos::IoFaultPlan;
        let clean_cluster = Cluster::local(3, 2);
        let clean_dfs = word_dfs(&clean_cluster);
        let expected = MapReduceJob::new(
            "wc",
            &clean_cluster,
            &clean_dfs,
            "words",
            tokenizer(),
            SumReducer,
        )
        .reducers(2)
        .run()
        .unwrap()
        .output;

        let cluster = Cluster::local(3, 2).with_chaos(
            ChaosPlan::none().io_faults(IoFaultPlan::new(41).eio(0.4).torn(0.6).bitrot(0.3)),
        );
        let dfs = word_dfs(&cluster);
        let faulty = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .memory_budget(1)
            .run()
            .unwrap();
        assert_eq!(
            faulty.output, expected,
            "sealed spills must be bit-identical under fault injection"
        );
        assert!(
            faulty.stats.io_retries + faulty.stats.torn_writes_detected > 0,
            "fault plan must have fired at least once: {:?}",
            faulty.stats.counters
        );
        assert_eq!(
            faulty.stats.runs_quarantined,
            faulty
                .stats
                .counters
                .get(builtin::RUNS_QUARANTINED)
                .copied()
                .unwrap_or(0),
        );
    }

    #[test]
    fn durable_job_replays_committed_reduces_bit_identically() {
        let run_dir =
            std::env::temp_dir().join(format!("gepeto-durable-job-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&run_dir);
        let journal = Arc::new(RunJournal::attach(&run_dir).unwrap());
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let first = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .durable(Arc::clone(&journal))
            .run()
            .unwrap();
        assert_eq!(first.stats.journal_replayed_tasks, 0);
        assert_eq!(journal.committed_reduces("wc").len(), 2);

        // A second run against the same journal (what `resume` does
        // after a kill) loads both partitions from their artifacts.
        let second = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .durable(Arc::clone(&journal))
            .run()
            .unwrap();
        assert_eq!(second.output, first.output);
        assert_eq!(second.stats.journal_replayed_tasks, 2);
        let _ = std::fs::remove_dir_all(&run_dir);
    }

    #[test]
    fn durable_job_recomputes_a_rotted_artifact() {
        let run_dir = std::env::temp_dir().join(format!(
            "gepeto-rotted-artifact-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&run_dir);
        let journal = Arc::new(RunJournal::attach(&run_dir).unwrap());
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let run = |j: &Arc<RunJournal>| {
            MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
                .reducers(2)
                .durable(Arc::clone(j))
                .run()
                .unwrap()
        };
        let first = run(&journal);
        // Rot one committed artifact at rest: flip a payload byte.
        let art = journal.committed_reduces("wc")[&0].path.clone();
        let mut data = std::fs::read(&art).unwrap();
        data[0] ^= 0x40;
        std::fs::write(&art, &data).unwrap();
        let second = run(&journal);
        assert_eq!(second.output, first.output);
        assert_eq!(
            second.stats.journal_replayed_tasks, 1,
            "only the intact partition replays"
        );
        assert!(second.stats.runs_quarantined >= 1);
        let _ = std::fs::remove_dir_all(&run_dir);
    }

    /// Same arithmetic as [`SumReducer`], but declares it does not need
    /// key-ordered groups — the engine takes the sort-skipping path.
    #[derive(Clone)]
    struct UnsortedSumReducer;
    impl Reducer<String, u64> for UnsortedSumReducer {
        type KOut = String;
        type VOut = u64;
        const SORTED_INPUT: bool = false;
        fn reduce(&mut self, key: &String, values: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(key.clone(), values.iter().sum());
        }
    }

    #[test]
    fn grouping_helpers_agree_and_preserve_value_order() {
        let pairs = vec![(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (1, 'e')];
        let mut key_sorted = pairs.clone();
        key_sorted.sort_by_key(|a| a.0);
        let s = group_sorted(key_sorted);
        assert_eq!(
            s,
            vec![(1, vec!['b', 'e']), (2, vec!['a', 'c']), (3, vec!['d'])]
        );
        // First-encounter group order, identical within-group value order.
        let u = group_unsorted(pairs);
        assert_eq!(
            u,
            vec![(2, vec!['a', 'c']), (1, vec!['b', 'e']), (3, vec!['d'])]
        );
    }

    #[test]
    fn sort_skipping_reducer_matches_sorted_results() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let sorted = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        let hashed = MapReduceJob::new(
            "wc-fast",
            &cluster,
            &dfs,
            "words",
            tokenizer(),
            UnsortedSumReducer,
        )
        .reducers(2)
        .run()
        .unwrap();
        assert_eq!(word_counts(&sorted), word_counts(&hashed));
        assert_eq!(
            sorted.stats.counters[builtin::REDUCE_INPUT_GROUPS],
            hashed.stats.counters[builtin::REDUCE_INPUT_GROUPS]
        );
        assert_eq!(hashed.stats.counters[builtin::SORT_SKIPPED], 2);
        assert!(
            !sorted.stats.counters.contains_key(builtin::SORT_SKIPPED),
            "sorted path must not report skipped sorts"
        );
        // Deterministic across repeats, like the sorted path.
        let rerun = MapReduceJob::new(
            "wc-fast",
            &cluster,
            &dfs,
            "words",
            tokenizer(),
            UnsortedSumReducer,
        )
        .reducers(2)
        .run()
        .unwrap();
        assert_eq!(hashed.output, rerun.output);
    }

    #[test]
    fn sort_skipping_preserves_within_group_value_order() {
        #[derive(Clone)]
        struct CollectSorted;
        impl Reducer<u64, u64> for CollectSorted {
            type KOut = u64;
            type VOut = Vec<u64>;
            fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, Vec<u64>>) {
                out.emit(*key, values.to_vec());
            }
        }
        #[derive(Clone)]
        struct CollectHashed;
        impl Reducer<u64, u64> for CollectHashed {
            type KOut = u64;
            type VOut = Vec<u64>;
            const SORTED_INPUT: bool = false;
            fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, Vec<u64>>) {
                out.emit(*key, values.to_vec());
            }
        }
        let cluster = Cluster::local(4, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 8, 2);
        dfs.put_fixed("r", (0..200u64).collect(), 4).unwrap();
        let mapper = FnMapper::new(|_off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(v % 5, *v);
        });
        let sorted = MapReduceJob::new("col", &cluster, &dfs, "r", mapper.clone(), CollectSorted)
            .reducers(3)
            .run()
            .unwrap();
        let hashed = MapReduceJob::new("col-fast", &cluster, &dfs, "r", mapper, CollectHashed)
            .reducers(3)
            .run()
            .unwrap();
        let by_key = |r: &JobResult<u64, Vec<u64>>| -> BTreeMap<u64, Vec<u64>> {
            r.output.iter().cloned().collect()
        };
        // The stable sort and the first-encounter scan walk the same
        // concatenation, so each group's values match element for element.
        assert_eq!(by_key(&sorted), by_key(&hashed));
    }

    #[test]
    fn combiner_shrinks_shuffle_without_changing_result() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let plain = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        let combined = MapReduceJob::new("wc+c", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .with_combiner(SumCombiner)
            .reducers(2)
            .run()
            .unwrap();
        assert_eq!(word_counts(&plain), word_counts(&combined));
        assert!(
            combined.stats.sim.shuffle_bytes < plain.stats.sim.shuffle_bytes,
            "combiner should cut shuffle volume: {} vs {}",
            combined.stats.sim.shuffle_bytes,
            plain.stats.sim.shuffle_bytes
        );
        assert!(combined.stats.counters[builtin::COMBINE_INPUT_RECORDS] > 0);
    }

    #[test]
    fn map_only_preserves_input_order() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 16, 2);
        dfs.put_fixed("nums", (0..100u64).collect(), 4).unwrap();
        let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            if v.is_multiple_of(3) {
                out.emit(off, *v);
            }
        });
        let result = MapOnlyJob::new("filter", &cluster, &dfs, "nums", mapper)
            .run()
            .unwrap();
        let values: Vec<u64> = result.output.iter().map(|&(_, v)| v).collect();
        let expected: Vec<u64> = (0..100).filter(|v| v % 3 == 0).collect();
        assert_eq!(values, expected);
        assert_eq!(result.stats.reduce_tasks, 0);
        assert!(result.stats.map_tasks >= 2);
    }

    #[test]
    fn map_offsets_are_global_record_indices() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 16, 2);
        dfs.put_fixed("nums", (100..200u64).collect(), 4).unwrap();
        assert!(dfs.num_blocks("nums").unwrap() > 1);
        let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(off, *v);
        });
        let result = MapOnlyJob::new("ident", &cluster, &dfs, "nums", mapper)
            .run()
            .unwrap();
        for (off, v) in result.output {
            assert_eq!(v, off + 100);
        }
    }

    #[test]
    fn all_values_of_a_key_reach_one_reduce_call() {
        let cluster = Cluster::local(4, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 8, 2);
        // 50 records of key k spread over many chunks.
        let records: Vec<u64> = (0..200).collect();
        dfs.put_fixed("r", records, 4).unwrap();
        let mapper = FnMapper::new(|_off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(v % 4, *v);
        });
        #[derive(Clone)]
        struct CountReducer;
        impl Reducer<u64, u64> for CountReducer {
            type KOut = u64;
            type VOut = u64;
            fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, u64>) {
                // One call per key: emit the group size once.
                out.emit(*key, values.len() as u64);
            }
        }
        let result = MapReduceJob::new("group", &cluster, &dfs, "r", mapper, CountReducer)
            .reducers(3)
            .run()
            .unwrap();
        let counts: BTreeMap<u64, u64> = result.output.into_iter().collect();
        assert_eq!(counts.len(), 4);
        for k in 0..4 {
            assert_eq!(counts[&k], 50, "key {k}");
        }
        assert_eq!(result.stats.counters[builtin::REDUCE_INPUT_GROUPS], 4);
    }

    #[test]
    fn setup_reads_config_and_cache() {
        let cluster = Cluster::local(2, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("nums", vec![1u64, 2, 3], 8).unwrap();

        #[derive(Clone)]
        struct OffsetMapper {
            offset: u64,
        }
        impl Mapper<u64> for OffsetMapper {
            type KOut = u64;
            type VOut = u64;
            fn setup(&mut self, ctx: &TaskContext<'_>) {
                let base = ctx.config.get_i64("base").unwrap() as u64;
                let extra = *ctx.cache.expect::<u64>("extra");
                self.offset = base + extra;
            }
            fn map(&mut self, _off: u64, v: &u64, out: &mut Emitter<u64, u64>) {
                out.emit(*v, v + self.offset);
            }
        }

        let result = MapOnlyJob::new("cfg", &cluster, &dfs, "nums", OffsetMapper { offset: 0 })
            .config(JobConfig::new().set("base", 100))
            .cache(DistributedCache::new().with("extra", 10u64))
            .run()
            .unwrap();
        let vals: Vec<u64> = result.output.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![111, 112, 113]);
    }

    #[test]
    fn injected_failures_are_retried_and_result_unchanged() {
        let base = Cluster::local(3, 2);
        let dfs = word_dfs(&base);
        let clean = MapReduceJob::new("wc", &base, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();

        let flaky = base.clone().with_failures(FailurePlan {
            map_fail_prob: 0.7,
            reduce_fail_prob: 0.7,
            seed: 13,
            max_attempts: 50,
        });
        let retried = MapReduceJob::new("wc", &flaky, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .run()
            .unwrap();
        assert_eq!(word_counts(&clean), word_counts(&retried));
        assert!(
            retried
                .stats
                .counters
                .get(builtin::TASK_RETRIES)
                .copied()
                .unwrap_or(0)
                > 0,
            "with p=0.7 over several tasks some retries must occur"
        );
    }

    #[test]
    fn exhausted_attempts_fail_the_job() {
        let cluster = Cluster::local(2, 2).with_failures(FailurePlan {
            map_fail_prob: 1.0, // every attempt fails
            reduce_fail_prob: 0.0,
            seed: 1,
            max_attempts: 3,
        });
        let dfs = word_dfs(&cluster);
        let err = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            JobError::TaskFailed {
                phase: "map",
                attempts: 3,
                ..
            }
        ));
    }

    #[test]
    fn missing_input_is_a_dfs_error() {
        let cluster = Cluster::local(2, 2);
        let dfs: Dfs<String> = Dfs::new(cluster.topology.clone(), 64, 2);
        let err = MapReduceJob::new("wc", &cluster, &dfs, "nope", tokenizer(), SumReducer)
            .run()
            .unwrap_err();
        assert!(matches!(err, JobError::Dfs(DfsError::FileNotFound(_))));
    }

    #[test]
    fn telemetry_captures_phases_tasks_and_shuffle() {
        let cluster = Cluster::local(3, 2);
        let dfs = word_dfs(&cluster);
        let rec = Recorder::enabled();
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .with_combiner(SumCombiner)
            .reducers(2)
            .telemetry(rec.clone())
            .run()
            .unwrap();
        let events = rec.events();
        use gepeto_telemetry::EventKind;
        let ends = |name: &str| {
            events
                .iter()
                .filter(|e| e.kind == EventKind::SpanEnd && e.name == name)
                .count()
        };
        assert_eq!(ends("job"), 1);
        assert_eq!(ends("phase.map"), 1);
        assert_eq!(ends("phase.shuffle"), 1);
        assert_eq!(ends("phase.reduce"), 1);
        assert_eq!(ends("task.map"), result.stats.map_tasks);
        assert_eq!(ends("task.reduce"), 2);
        assert!(ends("phase.combine") >= 1, "combiner span missing");
        assert_eq!(ends("phase.sort"), 2, "one sort span per reducer");
        // Every task span carries its identity labels.
        for e in events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart && e.name == "task.map")
        {
            assert!(e.label("task").is_some() && e.label("block").is_some());
        }
        // The virtual scheduler logged one decision per task, tagged.
        let sched: Vec<_> = events.iter().filter(|e| e.name == "sched.map").collect();
        assert_eq!(sched.len(), result.stats.map_tasks);
        assert!(sched.iter().all(|e| e.label("locality").is_some()));
        // Engine counters are mirrored into the recorder at job end.
        assert_eq!(
            rec.counter(builtin::SHUFFLE_BYTES),
            result.stats.counters[builtin::SHUFFLE_BYTES]
        );
        let summary = rec.summary();
        assert!(summary.phases.iter().any(|p| p.name == "map"));
        assert_eq!(
            summary.shuffle_bytes,
            Some(result.stats.counters[builtin::SHUFFLE_BYTES])
        );
    }

    #[test]
    fn telemetry_records_retry_points() {
        let cluster = Cluster::local(3, 2).with_failures(FailurePlan {
            map_fail_prob: 0.7,
            reduce_fail_prob: 0.7,
            seed: 13,
            max_attempts: 50,
        });
        let dfs = word_dfs(&cluster);
        let rec = Recorder::enabled();
        let result = MapReduceJob::new("wc", &cluster, &dfs, "words", tokenizer(), SumReducer)
            .reducers(2)
            .telemetry(rec.clone())
            .run()
            .unwrap();
        let retries = result.stats.counters[builtin::TASK_RETRIES];
        assert!(retries > 0);
        let points = rec
            .events()
            .iter()
            .filter(|e| e.name == "task.retry")
            .count() as u64;
        assert_eq!(points, retries);
        assert_eq!(rec.summary().retries, retries);
    }

    #[test]
    fn sim_report_attached() {
        let cluster = Cluster::parapluie();
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 3);
        dfs.put_fixed("nums", (0..1000u64).collect(), 8).unwrap();
        let mapper = FnMapper::new(|_o: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(*v % 10, *v);
        });
        let result = MapReduceJob::new("sim", &cluster, &dfs, "nums", mapper, {
            #[derive(Clone)]
            struct Max;
            impl Reducer<u64, u64> for Max {
                type KOut = u64;
                type VOut = u64;
                fn reduce(&mut self, k: &u64, vs: &[u64], out: &mut Emitter<u64, u64>) {
                    out.emit(*k, vs.iter().copied().max().unwrap());
                }
            }
            Max
        })
        .run()
        .unwrap();
        let sim = &result.stats.sim;
        assert!(sim.makespan_s > 0.0);
        assert_eq!(sim.cluster_startup_s, 25.0);
        assert_eq!(
            sim.data_local + sim.rack_local + sim.remote,
            result.stats.map_tasks
        );
        assert!(sim.shuffle_bytes > 0);
    }
}

#[cfg(test)]
mod partitioner_tests {
    use super::*;
    use crate::api::FnMapper;

    #[derive(Clone)]
    struct KeyLister;
    impl Reducer<u64, u64> for KeyLister {
        type KOut = usize;
        type VOut = u64;
        fn setup(&mut self, _ctx: &TaskContext<'_>) {}
        fn reduce(&mut self, key: &u64, _values: &[u64], out: &mut Emitter<usize, u64>) {
            out.emit(0, *key); // keys flow through; partition recovered below
        }
    }

    #[test]
    fn custom_range_partitioner_routes_keys() {
        // Verify routing via output ordering: partitions are concatenated
        // in order, so with a range partitioner the keys come out sorted
        // across partition boundaries.
        let cluster = Cluster::local(2, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("r", (0..100u64).rev().collect(), 8).unwrap();
        let mapper = FnMapper::new(|_o: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(*v, 1);
        });
        let result = MapReduceJob::new("range", &cluster, &dfs, "r", mapper, KeyLister)
            .reducers(4)
            .partitioner(|key: &u64, n: usize| (*key as usize * n / 100).min(n - 1))
            .run()
            .unwrap();
        let keys: Vec<u64> = result.output.iter().map(|&(_, k)| k).collect();
        // Globally sorted: within a partition keys are sorted by the
        // shuffle, and the range partitioner makes partitions ordered.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 100);
    }

    #[test]
    #[should_panic(expected = "partitioner returned")]
    fn out_of_range_partitioner_is_caught() {
        let cluster = Cluster::local(2, 1);
        let mut dfs = Dfs::new(cluster.topology.clone(), 64, 2);
        dfs.put_fixed("r", vec![1u64], 8).unwrap();
        let mapper = FnMapper::new(|_o: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(*v, 1);
        });
        let _ = MapReduceJob::new("bad", &cluster, &dfs, "r", mapper, KeyLister)
            .reducers(2)
            .partitioner(|_: &u64, n: usize| n) // == n, out of range
            .run();
    }
}
