//! Engine-level properties: the shuffle groups every value of a key into
//! exactly one reduce call, map-only jobs are order-preserving filters,
//! combiners never change results, and failure injection never changes
//! results (only retry counts).

use gepeto_mapred::{
    Cluster, Combiner, Dfs, Emitter, FailurePlan, FnMapper, MapOnlyJob, MapReduceJob, Reducer,
    Topology,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone)]
struct CollectReducer;
impl Reducer<u64, u64> for CollectReducer {
    type KOut = u64;
    type VOut = Vec<u64>;
    fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, Vec<u64>>) {
        let mut vs = values.to_vec();
        vs.sort_unstable();
        out.emit(*key, vs);
    }
}

#[derive(Clone)]
struct SumReducer;
impl Reducer<u64, u64> for SumReducer {
    type KOut = u64;
    type VOut = u64;
    fn reduce(&mut self, key: &u64, values: &[u64], out: &mut Emitter<u64, u64>) {
        out.emit(*key, values.iter().sum());
    }
}

#[derive(Clone)]
struct SumCombiner;
impl Combiner<u64, u64> for SumCombiner {
    fn combine(&mut self, _key: &u64, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }
}

fn key_mapper() -> impl gepeto_mapred::Mapper<u64, KOut = u64, VOut = u64> {
    FnMapper::new(|_off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
        out.emit(v % 7, *v);
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shuffle_groups_every_value_exactly_once(
        records in prop::collection::vec(0u64..1000, 0..300),
        chunk in 8usize..64,
        reducers in 1usize..6,
    ) {
        let cluster = Cluster::local(3, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), chunk, 2);
        dfs.put_fixed("r", records.clone(), 4).unwrap();
        let result = MapReduceJob::new("group", &cluster, &dfs, "r", key_mapper(), CollectReducer)
            .reducers(reducers)
            .run()
            .unwrap();
        // Each key appears exactly once in the output…
        let mut got: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (k, vs) in result.output {
            prop_assert!(got.insert(k, vs).is_none(), "key reduced twice");
        }
        // …and carries exactly the values the input holds for it.
        let mut want: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for v in &records {
            want.entry(v % 7).or_default().push(*v);
        }
        for vs in want.values_mut() {
            vs.sort_unstable();
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn map_only_filter_preserves_order(
        records in prop::collection::vec(0u64..1000, 0..300),
        chunk in 8usize..64,
        modulus in 2u64..6,
    ) {
        let cluster = Cluster::local(4, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), chunk, 2);
        dfs.put_fixed("r", records.clone(), 4).unwrap();
        let mapper = FnMapper::new(move |off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            if v.is_multiple_of(modulus) {
                out.emit(off, *v);
            }
        });
        let result = MapOnlyJob::new("filter", &cluster, &dfs, "r", mapper).run().unwrap();
        let got: Vec<u64> = result.output.iter().map(|&(_, v)| v).collect();
        let want: Vec<u64> = records.iter().copied().filter(|v| v % modulus == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn combiner_is_transparent(
        records in prop::collection::vec(0u64..1000, 1..300),
        chunk in 8usize..64,
    ) {
        let cluster = Cluster::local(3, 2);
        let mut dfs = Dfs::new(cluster.topology.clone(), chunk, 2);
        dfs.put_fixed("r", records, 4).unwrap();
        let plain = MapReduceJob::new("s", &cluster, &dfs, "r", key_mapper(), SumReducer)
            .reducers(3).run().unwrap();
        let combined = MapReduceJob::new("s", &cluster, &dfs, "r", key_mapper(), SumReducer)
            .with_combiner(SumCombiner)
            .reducers(3).run().unwrap();
        prop_assert_eq!(plain.output, combined.output);
        prop_assert!(combined.stats.sim.shuffle_bytes <= plain.stats.sim.shuffle_bytes);
    }

    #[test]
    fn failure_injection_never_changes_output(
        records in prop::collection::vec(0u64..1000, 1..200),
        p in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let clean_cluster = Cluster::local(3, 2);
        let mut dfs = Dfs::new(clean_cluster.topology.clone(), 16, 2);
        dfs.put_fixed("r", records, 4).unwrap();
        let clean = MapReduceJob::new("s", &clean_cluster, &dfs, "r", key_mapper(), SumReducer)
            .reducers(2).run().unwrap();
        let flaky_cluster = Cluster::local(3, 2).with_failures(FailurePlan {
            map_fail_prob: p,
            reduce_fail_prob: p,
            seed,
            max_attempts: 1000, // never exhaust
        });
        let flaky = MapReduceJob::new("s", &flaky_cluster, &dfs, "r", key_mapper(), SumReducer)
            .reducers(2).run().unwrap();
        prop_assert_eq!(clean.output, flaky.output);
    }

    #[test]
    fn dfs_chunk_count_matches_byte_math(
        n in 1usize..2000,
        rec_bytes in 1usize..64,
        chunk in 1usize..4096,
    ) {
        let cluster = Cluster::local(5, 1);
        let mut dfs = Dfs::new(cluster.topology.clone(), chunk, 3);
        dfs.put_fixed("f", (0..n as u64).collect(), rec_bytes).unwrap();
        let per_chunk = chunk.div_ceil(rec_bytes);
        let want = n.div_ceil(per_chunk);
        prop_assert_eq!(dfs.num_blocks("f").unwrap(), want);
        prop_assert_eq!(dfs.read("f").unwrap().len(), n);
    }

    // The documented contract of `Dfs::place_replicas`: the effective
    // factor is clamped to the node count, the returned nodes are always
    // pairwise distinct, and a factor ≥ 3 on a multi-rack topology spans
    // at least two racks.
    #[test]
    fn replica_placement_is_clamped_distinct_and_rack_diverse(
        nodes in 1usize..12,
        racks in 1usize..5,
        replication in 1usize..6,
        chunk_index in 0usize..40,
        file_tag in 0u64..1000,
    ) {
        let topo = Topology::new(nodes, racks.min(nodes), 2);
        let dfs: Dfs<u64> = Dfs::new(topo.clone(), 64, replication);
        let file = format!("f{file_tag}");
        let replicas = dfs.place_replicas(&file, chunk_index);
        prop_assert_eq!(replicas.len(), replication.min(nodes));
        let mut uniq = replicas.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), replicas.len(), "duplicate datanode in {:?}", &replicas);
        prop_assert!(replicas.iter().all(|&n| n < nodes));
        if replication.min(nodes) >= 3 && topo.num_racks() >= 2 {
            let rack_count = {
                let mut rs: Vec<_> = replicas.iter().map(|&n| topo.rack_of(n)).collect();
                rs.sort_unstable();
                rs.dedup();
                rs.len()
            };
            prop_assert!(rack_count >= 2, "replicas {:?} all on one rack", &replicas);
        }
    }
}
