#![warn(missing_docs)]

//! # gepeto-synth
//!
//! A deterministic, seed-driven synthetic mobility workload generator
//! built to exercise the engine at **million-user** scale. Where
//! `gepeto-geolife` reproduces the paper's 178-user GeoLife aggregates
//! (dense 1–5 s logging, heavy trails), this crate answers the scaling
//! question the paper leaves open: what happens when the *user* axis
//! grows by four orders of magnitude?
//!
//! Every user gets a personal geography (home and work anchors plus a
//! few leisure POIs around a Beijing-like city) and a daily movement
//! profile: wake at home, commute to work along a waypoint trail, a
//! Gamma-distributed work dwell, an optional evening POI visit, and the
//! commute home. Dwell times are Erlang samples (sums of exponentials —
//! the integer-shape Gamma), so the dwell distribution has the heavy
//! right tail real mobility data shows without ever leaving the
//! deterministic [`rand`] shim.
//!
//! Two properties make the output usable as an engine stress workload:
//!
//! 1. **Bit-reproducible.** Each user's trail is derived from its own
//!    RNG stream seeded by `(master seed, user id)` alone, so any subset
//!    of users, generated in any order, on any thread count, is
//!    identical bit for bit.
//! 2. **Streaming.** [`TraceStream`] yields traces user by user in time
//!    order while holding at most one user's trail in memory, and
//!    [`SynthConfig::to_dfs`] pours that stream straight into DFS chunk
//!    placement via `Dfs::put_from_iter` — one million users never exist
//!    as a single `Vec` anywhere on the write path.

pub mod dwell;
pub mod gen;

pub use gen::{SynthConfig, TraceStream};
