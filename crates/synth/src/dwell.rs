//! Deterministic samplers for the generator's dwell and jitter model.
//!
//! The only non-uniform distributions needed are the Gaussian (GPS
//! jitter) and the Erlang — the Gamma distribution with integer shape
//! `k`, sampled exactly as the sum of `k` exponentials. Both are built
//! on the workspace's deterministic `rand` shim, so every sample is a
//! pure function of the generator state.

use rand::Rng;

/// A standard-normal sample (Box–Muller transform).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] keeps the logarithm finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `N(mean, sd²)` sample.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// An Erlang(`k`, scale `mean / k`) sample: the sum of `k` i.i.d.
/// exponentials with the given overall `mean`. This is the Gamma
/// distribution for integer shape — right-skewed like real dwell times,
/// with relative spread `1/√k` (larger `k` → tighter around the mean).
///
/// # Panics
/// If `k` is zero or `mean` is not positive.
pub fn erlang<R: Rng + ?Sized>(rng: &mut R, k: u32, mean: f64) -> f64 {
    assert!(k > 0, "Erlang shape must be positive");
    assert!(mean > 0.0, "Erlang mean must be positive");
    let scale = mean / f64::from(k);
    // Sum of k exponentials via inverse CDF; ln of a product saves
    // nothing numerically at k ≤ 8, so keep the obvious form.
    let mut total = 0.0;
    for _ in 0..k {
        let u: f64 = 1.0 - rng.random::<f64>();
        total -= scale * u.ln();
    }
    total
}

/// An Erlang dwell in seconds, clamped to `[lo, hi]` — schedules need
/// hard bounds so a tail sample cannot push a day past its successor.
pub fn dwell_secs<R: Rng + ?Sized>(rng: &mut R, k: u32, mean: f64, lo: i64, hi: i64) -> i64 {
    (erlang(rng, k, mean) as i64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erlang_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(1);
        let (k, mean) = (4u32, 100.0);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| erlang(&mut rng, k, mean)).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 2.0, "mean {m}");
        // Var = k·scale² = mean²/k = 2500.
        assert!((var - 2_500.0).abs() < 250.0, "var {var}");
    }

    #[test]
    fn erlang_is_positive_and_right_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| erlang(&mut rng, 2, 50.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[n / 2]
        };
        assert!(mean > median, "right skew: mean {mean} vs median {median}");
    }

    #[test]
    fn dwell_respects_clamp() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let d = dwell_secs(&mut rng, 1, 10_000.0, 600, 3_600);
            assert!((600..=3_600).contains(&d));
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| erlang(&mut rng, 3, 42.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| erlang(&mut rng, 3, 42.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = erlang(&mut rng, 0, 1.0);
    }
}
