//! The streaming million-user generator.
//!
//! [`SynthConfig`] holds the knobs, [`SynthConfig::generate_user`] plays
//! out one user's days deterministically, and [`TraceStream`] strings
//! the users together into a single user-major, time-ordered record
//! stream — the exact layout `gepeto::dfs_io::put_dataset` writes, so
//! downstream jobs cannot tell a streamed synthetic file from a loaded
//! one.

use crate::dwell::{dwell_secs, normal};
use gepeto_model::{GeoPoint, MobilityTrace, Timestamp, Trail, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Meters per degree of latitude (and of longitude at the equator).
const M_PER_DEG: f64 = 111_194.93;

/// Bytes one trace occupies as a PLT text line (the DFS sizing unit).
const PLT_LINE_BYTES: u64 = 64;

/// Configuration of the synthetic workload. All knobs are plain data;
/// the generator is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of users. Each user's trail is derived independently, so
    /// this is the scale axis: `users = 1_000_000` is a one-liner.
    pub users: u64,
    /// Master seed; every per-user stream is deterministic in it.
    pub seed: u64,
    /// Simulated days per user.
    pub days: u32,
    /// GPS fixes logged along each commute leg.
    pub commute_waypoints: u32,
    /// Probability of an evening POI visit after work.
    pub outing_probability: f64,
    /// City center all geography is anchored to.
    pub city_center: GeoPoint,
    /// Midnight of the first simulated day.
    pub start: Timestamp,
}

impl SynthConfig {
    /// The default profile for `users` users: one simulated day, three
    /// waypoints per commute, Beijing-like geography. At these settings a
    /// user logs 10–15 traces per day, so a million users produce a
    /// ~13M-trace (~800 MB as PLT text) workload.
    ///
    /// # Panics
    /// If `users` is zero or exceeds `u32::MAX` (the [`UserId`] range).
    pub fn new(users: u64) -> Self {
        assert!(users > 0, "need at least one user");
        assert!(
            users <= u64::from(u32::MAX),
            "user count exceeds the UserId range"
        );
        Self {
            users,
            seed: 20130520,
            days: 1,
            commute_waypoints: 3,
            outing_probability: 0.55,
            city_center: GeoPoint::new(39.9042, 116.4074), // Beijing
            start: Timestamp::from_civil(2008, 5, 5, 0, 0, 0).unwrap(),
        }
    }

    /// Replaces the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the simulated day count.
    ///
    /// # Panics
    /// If `days` is zero.
    pub fn days(mut self, days: u32) -> Self {
        assert!(days > 0, "need at least one simulated day");
        self.days = days;
        self
    }

    /// Hard upper bound on traces a single user emits in one day.
    fn max_traces_per_day(&self) -> u64 {
        // wake + commute + work(2) + outing(waypoints + 2) + commute
        // home + final home fix.
        3 * u64::from(self.commute_waypoints) + 6
    }

    /// Expected total trace count — what a pre-sizing consumer should
    /// reserve for. Saturating: a nonsense configuration yields
    /// `u64::MAX`, never a wrapped-around small number.
    pub fn estimated_traces(&self) -> u64 {
        let per_day = 2 * u64::from(self.commute_waypoints) + 4;
        let outing =
            (self.outing_probability * (f64::from(self.commute_waypoints) + 2.0)).ceil() as u64;
        self.users
            .saturating_mul(u64::from(self.days))
            .saturating_mul(per_day + outing)
    }

    /// Hard upper bound on the total trace count (every user takes the
    /// evening outing every day). Saturating, like
    /// [`SynthConfig::estimated_traces`].
    pub fn max_traces(&self) -> u64 {
        self.users
            .saturating_mul(u64::from(self.days))
            .saturating_mul(self.max_traces_per_day())
    }

    /// Approximate PLT text size of the full output, in bytes.
    pub fn estimated_plt_bytes(&self) -> u64 {
        self.estimated_traces().saturating_mul(PLT_LINE_BYTES)
    }

    /// The traces of every user as one streaming iterator: user-major,
    /// time-ordered within each user, holding one user's trail at a
    /// time. Two calls yield identical streams.
    pub fn stream(&self) -> TraceStream {
        TraceStream {
            cfg: self.clone(),
            next_user: 0,
            buf: Vec::new().into_iter(),
        }
    }

    /// Generates one user's trail deterministically — a pure function of
    /// `(seed, user)`, independent of every other user.
    pub fn generate_user(&self, user: UserId) -> Trail {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(user) + 1),
        );
        let profile = UserProfile::derive(self, &mut rng);
        let capacity = (self.max_traces_per_day() * u64::from(self.days)) as usize;
        let mut traces = Vec::with_capacity(capacity);
        // Strictly advancing clock; days that spill past midnight push
        // the next wake-up instead of rewinding time.
        let mut clock = self.start;
        for day in 0..self.days {
            let midnight = self.start.plus(i64::from(day) * 86_400);
            self.emit_day(&mut rng, user, &profile, midnight, &mut clock, &mut traces);
        }
        Trail::new(user, traces)
    }

    /// One day: wake at home, commute, work dwell, optional evening POI
    /// visit, commute home.
    fn emit_day(
        &self,
        rng: &mut StdRng,
        user: UserId,
        profile: &UserProfile,
        midnight: Timestamp,
        clock: &mut Timestamp,
        out: &mut Vec<MobilityTrace>,
    ) {
        let wake = dwell_secs(rng, 3, 7.0 * 3_600.0, 4 * 3_600, 10 * 3_600);
        let mut t = midnight.plus(wake);
        if t < *clock {
            // The previous day ran long; sleep a minimum rest instead.
            t = clock.plus(6 * 3_600);
        }
        self.emit_fix(rng, user, profile.home, t, out);
        t = self.emit_commute(rng, user, profile.home, profile.work, t, out);
        let work_dwell = dwell_secs(rng, 4, 8.0 * 3_600.0, 4 * 3_600, 11 * 3_600);
        self.emit_fix(rng, user, profile.work, t.plus(work_dwell / 2), out);
        t = t.plus(work_dwell);
        self.emit_fix(rng, user, profile.work, t, out);
        if rng.random_bool(self.outing_probability) {
            let poi = profile.pois[rng.random_range(0..profile.pois.len())];
            t = self.emit_commute(rng, user, profile.work, poi, t, out);
            self.emit_fix(rng, user, poi, t, out);
            t = t.plus(dwell_secs(rng, 2, 5_400.0, 1_200, 4 * 3_600));
            self.emit_fix(rng, user, poi, t, out);
            t = self.emit_commute(rng, user, poi, profile.home, t, out);
        } else {
            t = self.emit_commute(rng, user, profile.work, profile.home, t, out);
        }
        self.emit_fix(rng, user, profile.home, t, out);
        *clock = t;
    }

    /// Emits the waypoint fixes of one commute leg; returns the arrival
    /// time.
    fn emit_commute(
        &self,
        rng: &mut StdRng,
        user: UserId,
        from: GeoPoint,
        to: GeoPoint,
        start: Timestamp,
        out: &mut Vec<MobilityTrace>,
    ) -> Timestamp {
        let dist = gepeto_geo::haversine_m(from, to).max(150.0);
        let secs = (dist / speed_mps(dist)) as i64 + 60;
        for i in 0..self.commute_waypoints {
            let frac = f64::from(i + 1) / f64::from(self.commute_waypoints + 1);
            let pos = interpolate(from, to, frac);
            self.emit_fix(rng, user, pos, start.plus((secs as f64 * frac) as i64), out);
        }
        start.plus(secs)
    }

    /// One noisy GPS fix.
    fn emit_fix(
        &self,
        rng: &mut StdRng,
        user: UserId,
        pos: GeoPoint,
        ts: Timestamp,
        out: &mut Vec<MobilityTrace>,
    ) {
        let noisy = offset_m(pos, normal(rng, 0.0, 12.0), normal(rng, 0.0, 12.0));
        let altitude = normal(rng, 55.0, 6.0) as f32;
        out.push(MobilityTrace::with_altitude(user, noisy, ts, altitude));
    }

    /// Streams the whole workload into a DFS file without ever holding
    /// more than one chunk plus one user's trail in memory.
    pub fn to_dfs(
        &self,
        dfs: &mut gepeto_mapred::Dfs<MobilityTrace>,
        name: &str,
    ) -> Result<(), gepeto_mapred::DfsError> {
        dfs.put_from_iter(name, self.stream(), |t| t.approx_plt_bytes())
    }
}

/// A user's personal geography, derived from the head of their RNG
/// stream.
struct UserProfile {
    home: GeoPoint,
    work: GeoPoint,
    pois: Vec<GeoPoint>,
}

impl UserProfile {
    fn derive(cfg: &SynthConfig, rng: &mut StdRng) -> Self {
        let c = cfg.city_center;
        // Home: residential ring out to ~12 km.
        let home = offset_m(
            c,
            normal(rng, 0.0, 5_000.0).clamp(-12_000.0, 12_000.0),
            normal(rng, 0.0, 5_000.0).clamp(-12_000.0, 12_000.0),
        );
        // Work: central business district.
        let work = offset_m(c, normal(rng, 0.0, 2_500.0), normal(rng, 0.0, 2_500.0));
        // Leisure POIs scattered around home.
        let n = rng.random_range(2usize..=4);
        let pois = (0..n)
            .map(|_| offset_m(home, normal(rng, 0.0, 1_800.0), normal(rng, 0.0, 1_800.0)))
            .collect();
        Self { home, work, pois }
    }
}

/// The streaming iterator over every user's traces. Owns its
/// configuration, so it can outlive the [`SynthConfig`] that spawned it
/// (e.g. handed to `Dfs::put_from_iter`).
pub struct TraceStream {
    cfg: SynthConfig,
    next_user: u64,
    buf: std::vec::IntoIter<MobilityTrace>,
}

impl Iterator for TraceStream {
    type Item = MobilityTrace;

    fn next(&mut self) -> Option<MobilityTrace> {
        loop {
            if let Some(t) = self.buf.next() {
                return Some(t);
            }
            if self.next_user >= self.cfg.users {
                return None;
            }
            let user = self.next_user as UserId;
            self.next_user += 1;
            self.buf = self.cfg.generate_user(user).into_traces().into_iter();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.next_user >= self.cfg.users && self.buf.len() == 0 {
            (0, Some(0))
        } else {
            (self.buf.len(), None)
        }
    }
}

/// Urban mode choice by trip length: walk short, cycle medium, drive
/// long.
fn speed_mps(dist_m: f64) -> f64 {
    if dist_m < 900.0 {
        1.35
    } else if dist_m < 3_200.0 {
        4.2
    } else {
        9.5
    }
}

/// Shifts `p` by `(north_m, east_m)` meters.
fn offset_m(p: GeoPoint, north_m: f64, east_m: f64) -> GeoPoint {
    let lat = p.lat + north_m / M_PER_DEG;
    let lon = p.lon + east_m / (M_PER_DEG * p.lat.to_radians().cos());
    GeoPoint::new(lat, lon)
}

/// Linear interpolation between two nearby points.
fn interpolate(a: GeoPoint, b: GeoPoint, frac: f64) -> GeoPoint {
    GeoPoint::new(
        a.lat + (b.lat - a.lat) * frac,
        a.lon + (b.lon - a.lon) * frac,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gepeto_mapred::{Cluster, Dfs};

    fn cfg() -> SynthConfig {
        SynthConfig::new(8).days(2)
    }

    #[test]
    fn stream_concatenates_user_trails_in_order() {
        let c = cfg();
        let streamed: Vec<MobilityTrace> = c.stream().collect();
        let mut expected = Vec::new();
        for u in 0..c.users as UserId {
            expected.extend(c.generate_user(u).into_traces());
        }
        assert_eq!(streamed, expected);
    }

    #[test]
    fn deterministic_per_seed_and_user() {
        let a: Vec<MobilityTrace> = cfg().stream().collect();
        let b: Vec<MobilityTrace> = cfg().stream().collect();
        assert_eq!(a, b);
        let c: Vec<MobilityTrace> = cfg().seed(42).stream().collect();
        assert_ne!(a, c);
        // A user's trail does not depend on how many users exist.
        assert_eq!(
            SynthConfig::new(8).generate_user(3),
            SynthConfig::new(1_000_000).generate_user(3)
        );
    }

    #[test]
    fn trails_are_time_ordered_across_days() {
        for u in 0..4 {
            let trail = cfg().generate_user(u);
            for w in trail.traces().windows(2) {
                assert!(w[0].timestamp <= w[1].timestamp, "user {u} out of order");
            }
            assert!(
                trail.len() >= 2 * 10,
                "user {u} too sparse: {}",
                trail.len()
            );
        }
    }

    #[test]
    fn trace_counts_respect_the_estimates() {
        let c = SynthConfig::new(64);
        let total = c.stream().count() as u64;
        assert!(total <= c.max_traces(), "{total} > {}", c.max_traces());
        let estimate = c.estimated_traces();
        assert!(
            total as f64 > estimate as f64 * 0.5 && (total as f64) < estimate as f64 * 1.5,
            "total {total} vs estimate {estimate}"
        );
    }

    #[test]
    fn estimates_saturate_instead_of_wrapping() {
        let mut c = SynthConfig::new(u64::from(u32::MAX));
        c.days = u32::MAX;
        assert_eq!(c.max_traces(), u64::MAX);
        assert_eq!(c.estimated_plt_bytes(), u64::MAX);
        // The million-user flagship config stays comfortably in range.
        let m = SynthConfig::new(1_000_000);
        assert!((10_000_000..30_000_000).contains(&m.estimated_traces()));
    }

    #[test]
    fn coordinates_stay_near_the_city() {
        let c = cfg();
        for t in c.stream() {
            assert!(t.point.is_valid());
            assert!(
                gepeto_geo::haversine_m(c.city_center, t.point) < 60_000.0,
                "fix strayed {} km from center",
                gepeto_geo::haversine_m(c.city_center, t.point) / 1_000.0
            );
        }
    }

    #[test]
    fn streams_into_dfs_chunks() {
        let cluster = Cluster::local(3, 2);
        let c = SynthConfig::new(32);
        let mut dfs: Dfs<MobilityTrace> = Dfs::new(cluster.topology.clone(), 4_096, 3);
        c.to_dfs(&mut dfs, "synth").unwrap();
        let streamed: Vec<MobilityTrace> = c.stream().collect();
        assert_eq!(dfs.read("synth").unwrap(), streamed);
        assert!(
            dfs.num_blocks("synth").unwrap() > 1,
            "expected multiple chunks"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = SynthConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "UserId range")]
    fn oversized_user_count_rejected() {
        let _ = SynthConfig::new(u64::from(u32::MAX) + 1);
    }
}
