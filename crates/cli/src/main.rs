//! `gepeto` — the GEPETO command-line interface.
//!
//! A thin driver over the `gepeto` library: generate a synthetic
//! GeoLife-calibrated dataset, run the paper's MapReduced algorithms on
//! a simulated cluster, run inference attacks, sanitize, and report the
//! privacy/utility trade-off. Run `gepeto help` for usage.
//!
//! Exit codes: `0` success, `1` usage or environment error, `3` the
//! MapReduce job itself failed after exhausting its retries (chaos won;
//! observability artifacts are still flushed), `4` the driver panicked.

mod args;
mod commands;

use std::process::ExitCode;

/// Exit code for a job that died after exhausting retries.
const EXIT_JOB_FAILED: u8 = 3;
/// Exit code for a driver panic.
const EXIT_PANIC: u8 = 4;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&argv))) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("gepeto: {e}");
            if e.starts_with(commands::JOB_FAILED_PREFIX) {
                ExitCode::from(EXIT_JOB_FAILED)
            } else {
                ExitCode::FAILURE
            }
        }
        Err(_) => {
            // The default panic hook already printed the payload.
            eprintln!("gepeto: driver panicked");
            ExitCode::from(EXIT_PANIC)
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        print!("{}", commands::USAGE);
        return Ok(());
    };
    match cmd.as_str() {
        // `resume` takes the run directory as a positional, unlike every
        // flag-only command: the directory IS the run's identity.
        "resume" => {
            let Some((dir, overrides)) = rest.split_first() else {
                return Err("usage: gepeto resume <run-dir> [--flag value]...".into());
            };
            commands::resume(dir, overrides)
        }
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        _ => commands::dispatch(cmd, &args::Args::parse(rest)?),
    }
}
