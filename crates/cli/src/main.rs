//! `gepeto` — the GEPETO command-line interface.
//!
//! A thin driver over the `gepeto` library: generate a synthetic
//! GeoLife-calibrated dataset, run the paper's MapReduced algorithms on
//! a simulated cluster, run inference attacks, sanitize, and report the
//! privacy/utility trade-off. Run `gepeto help` for usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gepeto: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        print!("{}", commands::USAGE);
        return Ok(());
    };
    let args = args::Args::parse(rest)?;
    match cmd.as_str() {
        "generate" => commands::generate(&args),
        "sample" => commands::sample(&args),
        "kmeans" => commands::kmeans(&args),
        "synth" => commands::synth(&args),
        "djcluster" => commands::djcluster(&args),
        "attack" => commands::attack(&args),
        "sanitize" => commands::sanitize(&args),
        "predict" => commands::predict(&args),
        "semantics" => commands::semantics(&args),
        "viz" => commands::viz(&args),
        "report" => commands::report(&args),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try 'gepeto help'")),
    }
}
