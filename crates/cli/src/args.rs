//! Minimal `--key value` flag parsing (no external dependency; see
//! DESIGN.md §7).

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs (also accepts `--key=value`). A flag
    /// followed by another flag or by nothing is a boolean switch and
    /// stores `"true"` (`--summary`, `--explain`).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, found '{arg}'"));
            };
            if let Some((k, v)) = key.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
                i += 1;
            } else {
                match argv.get(i + 1) {
                    Some(value) if !value.starts_with("--") => {
                        flags.insert(key.to_string(), value.clone());
                        i += 2;
                    }
                    _ => {
                        flags.insert(key.to_string(), "true".to_string());
                        i += 1;
                    }
                }
            }
        }
        Ok(Self { flags })
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean switch is set (`--flag` or `--flag=true`).
    pub fn get_flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1"))
    }

    /// Typed value with a default; errors on malformed input.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{raw}'")),
        }
    }

    /// Re-serializes the flags as `--key value` argv tokens (key-sorted,
    /// so the encoding is canonical) — what a run directory's MANIFEST
    /// records for `gepeto resume`.
    pub fn to_argv(&self) -> Vec<String> {
        self.flags
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.clone()])
            .collect()
    }

    /// Overlays `other`'s flags onto this set (theirs win) — how
    /// `gepeto resume <dir> --flag value` overrides the manifest flags.
    pub fn overlay(&mut self, other: &Args) {
        for (k, v) in &other.flags {
            self.flags.insert(k.clone(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_space_and_equals_forms() {
        let a = Args::parse(&argv("--users 10 --scale=0.5")).unwrap();
        assert_eq!(a.get("users"), Some("10"));
        assert_eq!(a.get_or("scale", 1.0).unwrap(), 0.5);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(&argv("")).unwrap();
        assert_eq!(a.get_or("k", 11usize).unwrap(), 11);
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&argv("oops --k 3")).is_err());
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let a = Args::parse(&argv("--summary --k 3 --explain")).unwrap();
        assert!(a.get_flag("summary"));
        assert!(a.get_flag("explain"));
        assert!(!a.get_flag("metrics-out"));
        assert_eq!(a.get_or("k", 0usize).unwrap(), 3);
    }

    #[test]
    fn equals_form_sets_boolean_switches_too() {
        let a = Args::parse(&argv("--summary=true --verbose=1 --quiet=false")).unwrap();
        assert!(a.get_flag("summary"));
        assert!(a.get_flag("verbose"));
        assert!(!a.get_flag("quiet"));
    }

    #[test]
    fn rejects_malformed_typed_value() {
        let a = Args::parse(&argv("--k abc")).unwrap();
        assert!(a.get_or("k", 1usize).is_err());
    }

    #[test]
    fn to_argv_round_trips_through_parse() {
        let a = Args::parse(&argv("--users 10 --summary --scale=0.5")).unwrap();
        let b = Args::parse(&a.to_argv()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn overlay_overrides_and_extends() {
        let mut base = Args::parse(&argv("--users 10 --k 3")).unwrap();
        let over = Args::parse(&argv("--k 5 --summary")).unwrap();
        base.overlay(&over);
        assert_eq!(base.get("users"), Some("10"));
        assert_eq!(base.get("k"), Some("5"));
        assert!(base.get_flag("summary"));
    }
}
