//! The `gepeto` subcommands.

use crate::args::Args;
use gepeto::prelude::*;
use gepeto::sanitize::Sanitizer;
use gepeto_geo::DistanceMetric;
use gepeto_mapred::journal::JournalEntry;
use gepeto_mapred::{commit, ChaosPlan, IoFaultPlan, JobError, RetryPolicy, RunJournal};
use gepeto_model::plt;
use gepeto_telemetry::{Recorder, Reporter};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
gepeto — GEoPrivacy-Enhancing TOolkit on MapReduce

USAGE:
    gepeto <command> [--flag value]...

COMMANDS:
    generate    Generate a synthetic GeoLife-calibrated dataset
                  --users N (178) --scale S (0.01) --seed X --plt-dir DIR
    report      Print dataset statistics
                  --users N --scale S --seed X
    sample      MapReduce down-sampling (paper §V)
                  --window SECS (60) --technique upper|middle --chunk-kb N (1024)
                  --memory-budget SIZE routes through a by-user shuffle that
                  spills to disk past SIZE bytes per partition (64k/16m/2g)
    kmeans      MapReduce k-means (paper §VI)
                  --k N (11) --distance haversine|sqeuclidean|euclidean|manhattan
                  --delta D (0.5) --max-iter N (150) --combiner true|false
                  --chunk-kb N (1024) --parapluie true|false
                  --memory-budget SIZE caps in-memory shuffle per partition
    synth       Stream a deterministic synthetic workload through a job
                  --users N (100000) --days N (1) --seed X --chunk-mb N (64)
                  --workload sampling|kmeans --memory-budget SIZE
                  --window SECS (60) --k N (11) --max-iter N (5)
    djcluster   MapReduce DJ-Cluster + preprocessing (paper §VII)
                  --radius M (60) --minpts N (4) --speed MPS (1.0)
                  --window SECS (60) --mr-rtree true|false
    attack      POI extraction + MMC de-anonymization demo (§VIII)
                  --users N (20) --scale S (0.02)
    sanitize    Apply a mechanism and measure the privacy/utility trade-off
                  --mechanism gaussian|uniform|aggregate|cloak|mixzone|temporal
                  --param M (100: sigma/radius/cell meters or window secs) --k N (2)
    semantics   Label POIs home/work/leisure, print semantic trajectories (§II)\n                  --users N (10) --scale S (0.015)\n    predict     MMC next-place prediction evaluation (§VIII)
                  --users N (15) --scale S (0.02) --train-fraction F (0.6)
    viz         Render the dataset as SVG + GeoJSON (+ ASCII density)
                  --out DIR (required) --width PX (900)
    resume      Resume a killed durable run: gepeto resume RUN_DIR [--flag v]...
                  Re-dispatches the MANIFEST argv; committed reduce
                  partitions and checkpoints replay instead of re-running.
    help        This text

Shared dataset flags: --users, --scale, --seed.
Host parallelism: --threads N sizes the work-stealing pool every command
runs its map/reduce tasks, k-means kernels and spill merges on (default:
all cores). --threads 1 runs everything inline and produces byte-identical
output to any other thread count; pool activity is exported as
gepeto_pool_* in the Prometheus exposition.
Observability (sample, kmeans, djcluster): --metrics-out PATH.jsonl dumps
the telemetry event stream (phase spans, per-task durations with locality
tags, counters) as JSON Lines and prints a run summary table; --summary
prints the summary table to stderr; --explain prints the critical-path
report (host span chain + virtual-cluster makespan attribution) and the
per-node ASCII Gantt timeline to stderr; --trace-out PATH.json exports
the host span tree and the virtual-cluster schedule (sched.*, chaos.*,
IO-fault and spill events) as a Chrome trace-event file — open it in
ui.perfetto.dev, or gate it with 'gepeto-bench validate-trace'.
Live monitoring (sample, kmeans, djcluster): --watch[=SECS] prints a
jobtracker-style heartbeat line (task progress, shuffle bytes, recovery
counters, per-node busy time) to stderr every SECS seconds (default 2);
--prom-out PATH rewrites PATH as a Prometheus text exposition on the
same cadence (and once at exit); --folded-out PATH writes collapsed
flamegraph stacks (host self-time; plus PATH.virtual with the simulated
cluster's per-task makespan attribution and PATH.alloc with exclusive
heap-allocation bytes per span) for inferno/flamegraph.pl.
Artifacts are written even when the run aborts mid-flight.
Fault injection (sample, kmeans, djcluster): --crash N@T[,N@T...] kills
node N at virtual second T; --degrade N@T@FACTOR[,...] slows node N by
FACTOR from virtual second T. --driver-retries N (0) with
--retry-backoff SECS (5) makes the kmeans/djcluster drivers checkpoint
and re-submit jobs that die, instead of propagating the error.
IO fault injection: --io-faults eio=P,torn=P,bitrot=P,enospc=SIZE,
slow=SECS_PER_MIB,streak=N,seed=X injects deterministic storage faults
under every spill and commit; retries/quarantines surface in --summary
and the Prometheus exposition (gepeto_io_*, gepeto_spill_runs_*).
Durability (sample, kmeans, synth): --run-dir DIR journals the run into
DIR (write-ahead journal.log, committed reduce partitions, MANIFEST,
OUTPUT artifact); 'gepeto resume DIR' finishes a killed run
bit-identically, replaying committed work instead of re-executing it.
With any observability flag, every attempt also streams its telemetry
to DIR/telemetry/attempt-NNN.jsonl; the post-hoc artifacts
(--metrics-out, --folded-out, --trace-out) are then stitched across all
attempts of the run — pre-kill work, replayed partitions and re-executed
tasks show up as distinct attempt lanes of one causal timeline.
Exit codes: 0 success, 1 usage/environment error, 3 job failed after
exhausting retries (artifacts still flushed), 4 driver panic.
";

/// Error prefix `main` maps to the job-failure exit code: the command
/// ran, but the MapReduce job itself died (chaos exhausted its retries,
/// unrecoverable storage loss) — distinct from usage errors and panics.
pub const JOB_FAILED_PREFIX: &str = "job failed: ";

fn job_failed(e: JobError) -> String {
    format!("{JOB_FAILED_PREFIX}{e}")
}

fn dataset_from(args: &Args, default_users: usize, default_scale: f64) -> Result<Dataset, String> {
    let users = args.get_or("users", default_users)?;
    let scale = args.get_or("scale", default_scale)?;
    let seed = args.get_or("seed", GeneratorConfig::paper().seed)?;
    let cfg = GeneratorConfig {
        users,
        scale,
        seed,
        ..GeneratorConfig::paper()
    };
    Ok(SyntheticGeoLife::new(cfg).generate())
}

fn cluster_from(args: &Args) -> Result<Cluster, String> {
    let base = if args.get_or("parapluie", false)? {
        Cluster::parapluie()
    } else {
        Cluster::local(4, 2)
    };
    Ok(base.with_chaos(chaos_from(args)?))
}

/// Builds the run's [`ChaosPlan`] from `--crash N@T[,N@T...]` and
/// `--degrade N@T@FACTOR[,...]` (times in virtual seconds).
fn chaos_from(args: &Args) -> Result<ChaosPlan, String> {
    let mut plan = ChaosPlan::none();
    if let Some(spec) = args.get("crash") {
        for item in spec.split(',') {
            let (node, at) = item
                .split_once('@')
                .ok_or_else(|| format!("--crash '{item}': expected NODE@SECONDS"))?;
            plan = plan.crash_node(
                node.parse()
                    .map_err(|_| format!("--crash '{item}': bad node '{node}'"))?,
                at.parse()
                    .map_err(|_| format!("--crash '{item}': bad time '{at}'"))?,
            );
        }
    }
    if let Some(spec) = args.get("degrade") {
        for item in spec.split(',') {
            let parts: Vec<&str> = item.split('@').collect();
            let [node, at, factor] = parts.as_slice() else {
                return Err(format!("--degrade '{item}': expected NODE@SECONDS@FACTOR"));
            };
            plan = plan.degrade_node(
                node.parse()
                    .map_err(|_| format!("--degrade '{item}': bad node '{node}'"))?,
                at.parse()
                    .map_err(|_| format!("--degrade '{item}': bad time '{at}'"))?,
                factor
                    .parse()
                    .map_err(|_| format!("--degrade '{item}': bad factor '{factor}'"))?,
            );
        }
    }
    if let Some(spec) = args.get("io-faults") {
        plan = plan.io_faults(io_faults_from(spec)?);
    }
    Ok(plan)
}

/// Parses `--io-faults eio=P,torn=P,bitrot=P,enospc=SIZE,slow=S,streak=N,
/// seed=X` into an [`IoFaultPlan`] (all keys optional).
fn io_faults_from(spec: &str) -> Result<IoFaultPlan, String> {
    let mut pairs = Vec::new();
    let mut seed = 1u64;
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, value) = item
            .split_once('=')
            .ok_or_else(|| format!("--io-faults '{item}': expected KEY=VALUE"))?;
        if key == "seed" {
            seed = value
                .parse()
                .map_err(|_| format!("--io-faults seed: cannot parse '{value}'"))?;
        } else {
            pairs.push((key, value));
        }
    }
    let mut plan = IoFaultPlan::new(seed);
    for (key, value) in pairs {
        let prob = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| format!("--io-faults {key}: cannot parse '{v}'"))
        };
        plan = match key {
            "eio" => plan.eio(prob(value)?),
            "torn" => plan.torn(prob(value)?),
            "bitrot" => plan.bitrot(prob(value)?),
            "slow" => plan.slow(prob(value)?),
            "streak" => plan.eio_streak(
                value
                    .parse()
                    .map_err(|_| format!("--io-faults streak: cannot parse '{value}'"))?,
            ),
            "enospc" => plan.disk_capacity(parse_bytes(value).ok_or_else(|| {
                format!("--io-faults enospc: cannot parse '{value}' (want bytes or 64k/16m/2g)")
            })? as u64),
            other => return Err(format!("--io-faults: unknown key '{other}'")),
        };
    }
    Ok(plan)
}

/// Attaches the `--run-dir` write-ahead journal when asked for: records
/// the launch in the MANIFEST (first writer wins, so a resume keeps the
/// original argv) and journals a `RunStart`.
fn run_journal_from(args: &Args, command: &str) -> Result<Option<Arc<RunJournal>>, String> {
    let Some(dir) = args.get("run-dir") else {
        return Ok(None);
    };
    let journal = RunJournal::attach(std::path::Path::new(dir))?;
    let mut argv = vec![command.to_string()];
    argv.extend(args.to_argv());
    journal.write_manifest(&argv)?;
    journal.append(&JournalEntry::RunStart {
        command: command.to_string(),
    })?;
    Ok(Some(Arc::new(journal)))
}

/// Commits `text` as the run's `OUTPUT` artifact through the atomic
/// commit protocol, journals it, and seals the run: after the
/// `RunComplete` entry a resume is a no-op, and the per-run spill root
/// is swept.
fn commit_output(journal: &RunJournal, chaos: &ChaosPlan, text: &str) -> Result<(), String> {
    let path = journal.dir().join("OUTPUT");
    if path.exists() {
        commit::quarantine(&path, chaos);
    }
    let receipt = commit::commit_bytes_verified(&path, text.as_bytes(), "run-output", chaos)
        .map_err(|e| e.to_string())?;
    journal.append(&JournalEntry::ArtifactCommit {
        name: "OUTPUT".to_string(),
        path: path.display().to_string(),
        checksum: receipt.checksum,
    })?;
    journal.append(&JournalEntry::RunComplete)?;
    journal.sweep_spill();
    println!("run journal: OUTPUT committed to {}", path.display());
    Ok(())
}

/// Bit-exact digest text of a sampled dataset: trace count plus an
/// FNV-1a over every field (floats via their IEEE-754 bit patterns) in
/// output order — two runs produced identical output iff these bytes
/// are identical.
fn dataset_output_text(command: &str, ds: &Dataset) -> String {
    use std::hash::Hasher;
    let mut h = gepeto_mapred::hash::FnvHasher::default();
    for t in ds.iter_traces() {
        h.write_u32(t.user);
        h.write_i64(t.timestamp.0);
        h.write_u64(t.point.lat.to_bits());
        h.write_u64(t.point.lon.to_bits());
        h.write_u32(t.altitude.to_bits());
    }
    format!(
        "command: {command}\ntraces: {}\nusers: {}\nfnv64: {:016x}\n",
        ds.num_traces(),
        ds.num_users(),
        h.finish()
    )
}

/// Bit-exact digest text of a k-means result: every centroid's full bit
/// pattern, so resumed and undisturbed runs can be diffed byte-for-byte.
fn kmeans_output_text(result: &kmeans::KMeansResult) -> String {
    let mut s = format!(
        "command: kmeans\niterations: {}\nconverged: {}\n",
        result.iterations, result.converged
    );
    for (i, c) in result.centroids.iter().enumerate() {
        s.push_str(&format!(
            "centroid {i}: {:016x}:{:016x} ({:.6}, {:.6})\n",
            c.lat.to_bits(),
            c.lon.to_bits(),
            c.lat,
            c.lon
        ));
    }
    s
}

/// Parses `--memory-budget SIZE` into bytes. Accepts plain bytes or a
/// `k`/`m`/`g` suffix (`64m`, `512K`, `2g`); `None` when absent.
fn memory_budget_from(args: &Args) -> Result<Option<usize>, String> {
    let Some(raw) = args.get("memory-budget") else {
        return Ok(None);
    };
    parse_bytes(raw)
        .map(Some)
        .ok_or_else(|| format!("--memory-budget: cannot parse '{raw}' (want bytes or 64k/16m/2g)"))
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix.
fn parse_bytes(raw: &str) -> Option<usize> {
    let raw = raw.trim();
    let (digits, shift) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 10u32),
        'm' | 'M' => (&raw[..raw.len() - 1], 20),
        'g' | 'G' => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: usize = digits.parse().ok()?;
    n.checked_shl(shift)
}

/// Builds the driver [`RetryPolicy`] from `--driver-retries` and
/// `--retry-backoff`; zero retries by default.
fn retry_policy_from(args: &Args) -> Result<RetryPolicy, String> {
    Ok(RetryPolicy::none()
        .retries(args.get_or("driver-retries", 0u32)?)
        .backoff(args.get_or("retry-backoff", 5.0f64)?))
}

fn dfs_with(args: &Args, cluster: &Cluster, ds: &Dataset) -> Result<Dfs<MobilityTrace>, String> {
    let chunk_kb: usize = args.get_or("chunk-kb", 1024usize)?;
    let mut dfs = gepeto::dfs_io::trace_dfs(cluster, chunk_kb * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "input", ds).map_err(|e| e.to_string())?;
    Ok(dfs)
}

/// Builds the run's [`Recorder`]: a monitored recorder (event stream +
/// live progress registry) when a live flag (`--watch`, `--prom-out`)
/// is given, a plain recording one for the post-hoc flags
/// (`--metrics-out`, `--summary`, `--explain`, `--folded-out`,
/// `--trace-out`) and for journaled runs (`--run-dir` archives every
/// attempt's telemetry for resume stitching), and a no-op handle
/// otherwise.
fn recorder_from(args: &Args) -> Recorder {
    if args.get("watch").is_some() || args.get("prom-out").is_some() {
        Recorder::monitored()
    } else if args.get("metrics-out").is_some()
        || args.get("folded-out").is_some()
        || args.get("trace-out").is_some()
        || args.get("run-dir").is_some()
        || args.get_flag("summary")
        || args.get_flag("explain")
    {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    }
}

/// Starts the per-attempt telemetry segment flusher under
/// `<run-dir>/telemetry/` and journals its provenance, so a later
/// resume can stitch every attempt into one causal trace. Archive
/// failures degrade to a warning — observability must never kill a
/// durable run.
fn start_archive(args: &Args, rec: &Recorder) -> Option<gepeto_telemetry::ArchiveWriter> {
    use gepeto_telemetry::archive;
    let dir = PathBuf::from(args.get("run-dir")?);
    if !rec.is_enabled() {
        return None;
    }
    let (attempt, path) = match archive::next_segment_path(&dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "telemetry archive: {}: {e} (continuing without)",
                dir.display()
            );
            return None;
        }
    };
    if let Ok(run_id) = archive::ensure_run_id(&dir) {
        if let Some(monitor) = rec.monitor() {
            let argv: Vec<String> = std::env::args().skip(1).collect();
            monitor.set_run_info(&run_id, &argv.join(" "));
        }
    }
    if let Ok(journal) = RunJournal::attach(&dir) {
        let _ = journal.append(&JournalEntry::TelemetrySegment {
            attempt,
            path: path.display().to_string(),
        });
    }
    match gepeto_telemetry::ArchiveWriter::start(rec.clone(), path, Duration::from_millis(200)) {
        Ok(writer) => Some(writer),
        Err(e) => {
            eprintln!(
                "telemetry archive: {}: {e} (continuing without)",
                dir.display()
            );
            None
        }
    }
}

/// Parses `--watch[=SECS]`: `None` when absent, the default 2 s
/// heartbeat for the bare flag, else the given interval.
fn watch_interval(args: &Args) -> Result<Option<f64>, String> {
    match args.get("watch") {
        None => Ok(None),
        Some("true") => Ok(Some(2.0)),
        Some(raw) => match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 => Ok(Some(secs)),
            _ => Err(format!("--watch: bad interval '{raw}' (want seconds > 0)")),
        },
    }
}

/// Starts the background heartbeat/exposition reporter when `--watch`
/// or `--prom-out` asks for one. Status lines go to stderr only under
/// `--watch`; `--prom-out` alone refreshes the exposition file
/// silently on the default cadence.
fn reporter_from(args: &Args, rec: &Recorder) -> Result<Option<Reporter>, String> {
    let watch = watch_interval(args)?;
    let prom_out = args.get("prom-out").map(PathBuf::from);
    if watch.is_none() && prom_out.is_none() {
        return Ok(None);
    }
    let Some(monitor) = rec.monitor() else {
        return Ok(None);
    };
    let every = Duration::from_secs_f64(watch.unwrap_or(2.0));
    Ok(Some(Reporter::start(
        monitor,
        every,
        prom_out,
        watch.is_some(),
    )))
}

/// Runs `body` under the run's observability harness: the live
/// heartbeat/exposition reporter covers the whole run, and the
/// post-hoc artifacts are emitted afterwards — even when the run
/// itself aborts (chaos exhaustion, driver-retry failure), so a failed
/// run still leaves its event stream and flamegraph behind.
fn observed(args: &Args, body: impl FnOnce(&Recorder) -> Result<(), String>) -> Result<(), String> {
    let rec = recorder_from(args);
    let archive = start_archive(args, &rec);
    let reporter = reporter_from(args, &rec)?;
    // A panicking driver must still leave its artifacts behind, exactly
    // like an aborting one — flush, then let `main` map the resumed
    // panic to its own exit code.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&rec)));
    if let Some(reporter) = reporter {
        reporter.stop();
    }
    // Seal this attempt's segment before the post-hoc artifacts read the
    // archive back — they stitch across every sealed attempt.
    if let Some(archive) = archive {
        archive.stop();
    }
    let artifacts = finish_metrics(args, &rec);
    match result {
        Ok(outcome) => outcome.and(artifacts),
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Emits the run's observability outputs: the JSONL event stream plus a
/// summary table for `--metrics-out`, the summary table on stderr for
/// `--summary`, the critical-path + timeline reports on stderr for
/// `--explain`, collapsed flamegraph stacks for `--folded-out`, and a
/// Chrome trace-event export for `--trace-out`.
///
/// Under `--run-dir` the event-stream artifacts (`--metrics-out`,
/// `--folded-out`, `--trace-out`) are built from the *stitched* archive
/// — every attempt of the run, rebased into one causal timeline — while
/// `--summary`/`--explain` keep describing the attempt that just ran.
fn finish_metrics(args: &Args, rec: &Recorder) -> Result<(), String> {
    // The stream feeding the file artifacts: the stitched cross-attempt
    // archive when one exists, else this process's live events with the
    // final counter totals appended (segments already carry theirs).
    let segments = args
        .get("run-dir")
        .map(|dir| gepeto_telemetry::load_segments(std::path::Path::new(dir)))
        .unwrap_or_default();
    let attempts = segments.len();
    let events = if segments.is_empty() {
        let mut events = rec.events();
        let max_ts = events.iter().map(|e| e.ts_us).max().unwrap_or(0);
        events.extend(gepeto_telemetry::counter_events(&rec.counters(), max_ts));
        events
    } else {
        gepeto_telemetry::stitch(&segments)
    };
    if let Some(path) = args.get("folded-out") {
        std::fs::write(path, gepeto_telemetry::host_folded(&events))
            .map_err(|e| format!("--folded-out {path}: {e}"))?;
        let mut written = format!("flamegraph: host stacks -> {path}");
        if let Some(virtual_stacks) = gepeto_telemetry::virtual_folded(&events) {
            let vpath = format!("{path}.virtual");
            std::fs::write(&vpath, virtual_stacks)
                .map_err(|e| format!("--folded-out {vpath}: {e}"))?;
            written.push_str(&format!(", virtual stacks -> {vpath}"));
        }
        if let Some(alloc_stacks) = gepeto_telemetry::alloc_folded(&events) {
            let apath = format!("{path}.alloc");
            std::fs::write(&apath, alloc_stacks)
                .map_err(|e| format!("--folded-out {apath}: {e}"))?;
            written.push_str(&format!(", alloc stacks -> {apath}"));
        }
        eprintln!("{written}");
    }
    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, gepeto_telemetry::write_chrome_trace(&events))
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
        eprintln!(
            "trace: {} events{} -> {path} (open in ui.perfetto.dev)",
            events.len(),
            if attempts > 1 {
                format!(", stitched across {attempts} attempts")
            } else {
                String::new()
            }
        );
    }
    if let Some(path) = args.get("metrics-out") {
        let file = std::fs::File::create(path).map_err(|e| format!("--metrics-out {path}: {e}"))?;
        let mut writer = std::io::BufWriter::new(file);
        gepeto_telemetry::write_jsonl(&mut writer, &events)
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
        println!("\n{}", rec.summary().render());
        println!("telemetry: {} events written to {path}", events.len());
    }
    if args.get_flag("summary") {
        eprintln!("{}", rec.summary().render());
    }
    if args.get_flag("explain") {
        eprint!("{}", rec.critical_path().render());
        if let Some(vcp) = rec.virtual_critical_path() {
            eprint!("{}", vcp.render());
        }
        if let Some(timeline) = rec.timeline() {
            eprint!("{}", timeline.render());
        }
    }
    Ok(())
}

fn print_job(label: &str, stats: &gepeto_mapred::JobStats) {
    println!(
        "{label}: {} map tasks, {} reduce tasks | real {:.2?} | sim makespan {:.1} s \
         (startup {:.0} s) | locality {}/{}/{} | shuffle {} B",
        stats.map_tasks,
        stats.reduce_tasks,
        stats.real_elapsed,
        stats.sim.makespan_s,
        stats.sim.cluster_startup_s,
        stats.sim.data_local,
        stats.sim.rack_local,
        stats.sim.remote,
        stats.sim.shuffle_bytes,
    );
    if stats.retries + stats.reexecuted_maps + stats.failed_over_reads + stats.blacklisted_nodes > 0
    {
        println!(
            "  recovery: {} task retries | {} re-executed maps | {} failed-over reads \
             | {} blacklisted nodes | {:.1} s burned by failed attempts",
            stats.retries,
            stats.reexecuted_maps,
            stats.failed_over_reads,
            stats.blacklisted_nodes,
            stats.sim.failed_attempt_s,
        );
    }
    if stats.io_retries
        + stats.torn_writes_detected
        + stats.runs_quarantined
        + stats.journal_replayed_tasks
        > 0
    {
        println!(
            "  durability: {} io retries | {} torn writes detected | {} runs quarantined \
             | {} reduce tasks replayed from artifacts",
            stats.io_retries,
            stats.torn_writes_detected,
            stats.runs_quarantined,
            stats.journal_replayed_tasks,
        );
    }
}

/// Dispatches a parsed command — shared by `main` and [`resume`].
pub fn dispatch(cmd: &str, args: &Args) -> Result<(), String> {
    let threads = args.get_or("threads", 0usize)?;
    if threads > 0 && !gepeto_pool::set_threads(threads) {
        eprintln!("--threads {threads}: pool already sized; flag ignored");
    }
    match cmd {
        "generate" => generate(args),
        "sample" => sample(args),
        "kmeans" => kmeans(args),
        "synth" => synth(args),
        "djcluster" => djcluster(args),
        "attack" => attack(args),
        "sanitize" => sanitize(args),
        "predict" => predict(args),
        "semantics" => semantics(args),
        "viz" => viz(args),
        "report" => report(args),
        other => Err(format!("unknown command '{other}'; try 'gepeto help'")),
    }
}

/// `gepeto resume <run-dir> [--flag value ...]`: re-dispatches the argv
/// recorded in the run directory's MANIFEST (extra flags override it).
/// Stale spill runs are swept first; committed reduce partitions and
/// driver checkpoints then replay instead of re-executing, so the
/// resumed run completes bit-identically to an undisturbed one. A run
/// whose journal already holds `RunComplete` is a no-op.
pub fn resume(run_dir: &str, overrides: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(run_dir);
    let manifest = RunJournal::read_manifest(&dir)?;
    let (cmd, rest) = manifest
        .split_first()
        .ok_or_else(|| format!("resume: empty MANIFEST in {run_dir}"))?;
    let journal = RunJournal::attach(&dir)?;
    if journal.is_complete() {
        println!(
            "resume: run already complete; OUTPUT at {}",
            dir.join("OUTPUT").display()
        );
        return Ok(());
    }
    journal.sweep_spill();
    let committed = journal
        .entries()
        .iter()
        .filter(|e| matches!(e, JournalEntry::ReduceCommit { .. }))
        .count();
    drop(journal);
    let mut args = Args::parse(rest)?;
    args.overlay(&Args::parse(overrides)?);
    eprintln!(
        "resume: re-dispatching '{cmd}' from {run_dir} \
         ({committed} committed reduce partition(s) on file)"
    );
    dispatch(cmd, &args)
}

/// `gepeto generate`
pub fn generate(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 178, 0.01)?;
    let stats = DatasetStats::compute(&ds);
    println!("{stats}");
    if let Some(dir) = args.get("plt-dir") {
        let dir = std::path::Path::new(dir);
        for trail in ds.trails() {
            let user_dir = dir.join(format!("{:03}/Trajectory", trail.user));
            std::fs::create_dir_all(&user_dir).map_err(|e| e.to_string())?;
            let mut body = String::new();
            for t in trail.traces() {
                body.push_str(&plt::format_line(t));
                body.push('\n');
            }
            std::fs::write(user_dir.join("trajectory.plt"), body).map_err(|e| e.to_string())?;
        }
        println!(
            "\nwrote {} PLT user directories under {}",
            ds.num_users(),
            dir.display()
        );
    }
    Ok(())
}

/// `gepeto report`
pub fn report(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 178, 0.01)?;
    println!("{}", DatasetStats::compute(&ds));
    Ok(())
}

/// `gepeto sample`
pub fn sample(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 178, 0.01)?;
    let cluster = cluster_from(args)?;
    let dfs = dfs_with(args, &cluster, &ds)?;
    let t = args.get("technique").unwrap_or("upper");
    let technique = sampling::Technique::parse(t).ok_or(format!("unknown technique '{t}'"))?;
    let cfg = sampling::SamplingConfig::new(args.get_or("window", 60i64)?, technique);
    let budget = memory_budget_from(args)?;
    let journal = run_journal_from(args, "sample")?;
    observed(args, |rec| {
        let (sampled, stats) = if let Some(j) = &journal {
            sampling::mapreduce_sample_by_user_durable(
                &cluster, &dfs, "input", &cfg, budget, j, rec,
            )
        } else if budget.is_some() {
            sampling::mapreduce_sample_by_user(&cluster, &dfs, "input", &cfg, budget, rec)
        } else {
            sampling::mapreduce_sample_with(&cluster, &dfs, "input", &cfg, rec)
        }
        .map_err(job_failed)?;
        println!(
            "sampling window {} s: {} -> {} traces ({:.2} %)",
            cfg.window_secs,
            ds.num_traces(),
            sampled.num_traces(),
            100.0 * sampled.num_traces() as f64 / ds.num_traces().max(1) as f64
        );
        print_job("job", &stats);
        print_spill(&stats);
        if let Some(j) = &journal {
            commit_output(j, &cluster.chaos, &dataset_output_text("sample", &sampled))?;
        }
        Ok(())
    })
}

/// Prints the out-of-core shuffle/reduce counters when the job spilled.
fn print_spill(stats: &gepeto_mapred::JobStats) {
    use gepeto_mapred::counters::builtin;
    let get = |key: &str| stats.counters.get(key).copied().unwrap_or(0);
    let (bytes, files, groups) = (
        get(builtin::SPILLED_BYTES),
        get(builtin::SPILL_FILES),
        get(builtin::SPILLED_GROUPS),
    );
    if bytes + files + groups > 0 {
        println!("  out-of-core: {bytes} B spilled across {files} run files | {groups} reduce groups overflowed");
    }
}

/// `gepeto synth`: generate a deterministic synthetic mobility workload
/// (streamed user-by-user, never materializing the dataset) into the
/// DFS, then push it through a MapReduce workload — optionally under a
/// `--memory-budget` small enough to force the shuffle out of core.
pub fn synth(args: &Args) -> Result<(), String> {
    let users = args.get_or("users", 100_000u64)?;
    if users == 0 || users > u64::from(u32::MAX) {
        return Err(format!("--users {users}: want 1..=u32::MAX"));
    }
    let cfg = gepeto_synth::SynthConfig::new(users)
        .seed(args.get_or("seed", 20130520u64)?)
        .days(args.get_or("days", 1u32)?);
    let cluster = cluster_from(args)?;
    let chunk_mb: usize = args.get_or("chunk-mb", 64usize)?;
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, chunk_mb << 20);
    println!(
        "synth: {} users x {} day(s), seed {} -> ~{} traces (~{:.1} MB as PLT)",
        cfg.users,
        cfg.days,
        cfg.seed,
        cfg.estimated_traces(),
        cfg.estimated_plt_bytes() as f64 / (1024.0 * 1024.0),
    );
    let t0 = std::time::Instant::now();
    cfg.to_dfs(&mut dfs, "synth").map_err(|e| e.to_string())?;
    println!(
        "synth: streamed into DFS in {:.2?} ({} blocks, {} B)",
        t0.elapsed(),
        dfs.num_blocks("synth").unwrap_or(0),
        dfs.file_bytes("synth").unwrap_or(0),
    );
    let budget = memory_budget_from(args)?;
    let workload = args.get("workload").unwrap_or("sampling").to_string();
    let journal = run_journal_from(args, "synth")?;
    observed(args, |rec| match workload.as_str() {
        "sampling" => {
            let scfg = sampling::SamplingConfig::new(
                args.get_or("window", 60i64)?,
                sampling::Technique::ClosestToUpperLimit,
            );
            let (sampled, stats) = if let Some(j) = &journal {
                sampling::mapreduce_sample_by_user_durable(
                    &cluster, &dfs, "synth", &scfg, budget, j, rec,
                )
            } else {
                sampling::mapreduce_sample_by_user(&cluster, &dfs, "synth", &scfg, budget, rec)
            }
            .map_err(job_failed)?;
            println!(
                "sampling window {} s: kept {} traces across {} users",
                scfg.window_secs,
                sampled.num_traces(),
                sampled.num_users(),
            );
            print_job("job", &stats);
            print_spill(&stats);
            if let Some(j) = &journal {
                commit_output(j, &cluster.chaos, &dataset_output_text("synth", &sampled))?;
            }
            Ok(())
        }
        "kmeans" => {
            let kcfg = kmeans::KMeansConfig {
                k: args.get_or("k", 11usize)?,
                max_iterations: args.get_or("max-iter", 5usize)?,
                seed: args.get_or("seed", 1u64)?,
                use_combiner: args.get_or("combiner", false)?,
                memory_budget: budget,
                ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
            };
            let result = if let Some(j) = &journal {
                kmeans::mapreduce_kmeans_durable(&cluster, &dfs, "synth", &kcfg, j, rec)
            } else {
                kmeans::mapreduce_kmeans_with(&cluster, &dfs, "synth", &kcfg, rec)
            }
            .map_err(job_failed)?;
            println!(
                "k-means: k={} converged={} after {} iterations",
                kcfg.k, result.converged, result.iterations
            );
            if let Some(last) = result.per_iteration.last() {
                print_job("last iteration", &last.job);
                print_spill(&last.job);
            }
            if let Some(j) = &journal {
                commit_output(j, &cluster.chaos, &kmeans_output_text(&result))?;
            }
            Ok(())
        }
        other => Err(format!("--workload '{other}': want sampling|kmeans")),
    })
}

/// `gepeto kmeans`
pub fn kmeans(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 178, 0.01)?;
    let cluster = cluster_from(args)?;
    let dfs = dfs_with(args, &cluster, &ds)?;
    let distance = DistanceMetric::parse(args.get("distance").unwrap_or("sqeuclidean"))
        .ok_or("unknown distance metric")?;
    let cfg = kmeans::KMeansConfig {
        k: args.get_or("k", 11usize)?,
        distance,
        convergence_delta: args.get_or("delta", 0.5f64)?,
        max_iterations: args.get_or("max-iter", 150usize)?,
        seed: args.get_or("seed", 1u64)?,
        use_combiner: args.get_or("combiner", false)?,
        memory_budget: memory_budget_from(args)?,
    };
    let policy = retry_policy_from(args)?;
    let journal = run_journal_from(args, "kmeans")?;
    observed(args, |rec| {
        let result = if let Some(j) = &journal {
            kmeans::mapreduce_kmeans_durable(&cluster, &dfs, "input", &cfg, j, rec)
        } else if policy.max_job_retries > 0 {
            let mut dfs = dfs;
            kmeans::mapreduce_kmeans_checkpointed(&cluster, &mut dfs, "input", &cfg, &policy, rec)
        } else {
            kmeans::mapreduce_kmeans_with(&cluster, &dfs, "input", &cfg, rec)
        }
        .map_err(job_failed)?;
        println!(
            "k-means: k={} distance={} converged={} after {} iterations",
            cfg.k,
            cfg.distance.name(),
            result.converged,
            result.iterations
        );
        if result.job_retries > 0 {
            println!(
                "driver: {} whole-job re-submissions recovered from checkpoints",
                result.job_retries
            );
        }
        let mean_iter_sim: f64 = result
            .per_iteration
            .iter()
            .map(|i| i.job.sim.makespan_s)
            .sum::<f64>()
            / result.iterations.max(1) as f64;
        println!("mean simulated iteration time: {mean_iter_sim:.1} s");
        if let Some(last) = result.per_iteration.last() {
            print_job("last iteration", &last.job);
            print_spill(&last.job);
        }
        for (i, c) in result.centroids.iter().enumerate() {
            println!("  centroid {i}: ({:.6}, {:.6})", c.lat, c.lon);
        }
        if let Some(j) = &journal {
            commit_output(j, &cluster.chaos, &kmeans_output_text(&result))?;
        }
        Ok(())
    })
}

/// `gepeto djcluster`
pub fn djcluster(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 178, 0.01)?;
    let cluster = cluster_from(args)?;
    let mut dfs = dfs_with(args, &cluster, &ds)?;
    // The paper clusters the *sampled* dataset; do the same.
    let window = args.get_or("window", 60i64)?;
    let scfg = sampling::SamplingConfig::new(window, sampling::Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "input", "sampled", &scfg)
        .map_err(job_failed)?;
    let cfg = djcluster::DjConfig {
        radius_m: args.get_or("radius", 60.0f64)?,
        min_pts: args.get_or("minpts", 4usize)?,
        speed_threshold_mps: args.get_or("speed", 1.0f64)?,
        dup_threshold_m: args.get_or("dup", 0.5f64)?,
    };
    let rtree_cfg = args
        .get_or("mr-rtree", true)?
        .then(gepeto::rtree_build::RTreeBuildConfig::default);
    let policy = retry_policy_from(args)?;
    observed(args, |rec| {
        let (clustering, pre, stats) = if policy.max_job_retries > 0 {
            let (clustering, pre, stats, job_retries) =
                djcluster::mapreduce_djcluster_full_resilient(
                    &cluster,
                    &mut dfs,
                    "sampled",
                    &cfg,
                    rtree_cfg.as_ref(),
                    &policy,
                    rec,
                )
                .map_err(job_failed)?;
            if job_retries > 0 {
                println!(
                    "driver: {job_retries} whole-job re-submissions recovered from checkpoints"
                );
            }
            (clustering, pre, stats)
        } else {
            djcluster::mapreduce_djcluster_full_with(
                &cluster,
                &mut dfs,
                "sampled",
                &cfg,
                rtree_cfg.as_ref(),
                rec,
            )
            .map_err(job_failed)?
        };
        println!(
            "preprocessing: {} -> {} (speed filter) -> {} (dedup)",
            pre.input, pre.after_speed_filter, pre.after_dedup
        );
        println!(
            "DJ-Cluster: {} clusters, {} noise traces",
            clustering.clusters.len(),
            clustering.noise
        );
        print_job("cluster job", &stats.cluster_job);
        Ok(())
    })
}

/// `gepeto attack`
pub fn attack(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 20, 0.02)?;
    let cfg = djcluster::DjConfig::default();
    let pois = attacks::extract_pois_dataset(&ds, &cfg);
    let mut with_home = 0usize;
    for (user, user_pois) in &pois {
        if let Some(home) = attacks::infer_home(user_pois) {
            with_home += 1;
            println!(
                "user {user}: {} POIs, home ≈ ({:.5}, {:.5}), {} visits",
                user_pois.len(),
                home.center.lat,
                home.center.lon,
                home.visits
            );
        }
    }
    println!("\nhome inferred for {with_home}/{} users", ds.num_users());

    // MMC de-anonymization: train on the first half of each trail, attack
    // with the second half.
    let mut gallery = std::collections::BTreeMap::new();
    let mut targets = Vec::new();
    for trail in ds.trails() {
        let traces = trail.traces().to_vec();
        if traces.len() < 200 {
            continue;
        }
        let mid = traces.len() / 2;
        let train = gepeto_model::Trail::new(trail.user, traces[..mid].to_vec());
        let test = gepeto_model::Trail::new(trail.user, traces[mid..].to_vec());
        if let (Some(g), Some(t)) = (
            attacks::learn_mmc(&train, &cfg),
            attacks::learn_mmc(&test, &cfg),
        ) {
            gallery.insert(trail.user, g);
            targets.push((trail.user, t));
        }
    }
    let mut hits = 0usize;
    for (truth, target) in &targets {
        let ranked = attacks::mmc::deanonymize(&gallery, target);
        if ranked.first().map(|r| r.0) == Some(*truth) {
            hits += 1;
        }
    }
    if !targets.is_empty() {
        println!(
            "MMC de-anonymization: {hits}/{} users re-identified ({:.0} %)",
            targets.len(),
            100.0 * hits as f64 / targets.len() as f64
        );
    }
    Ok(())
}

/// `gepeto sanitize`
pub fn sanitize(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 20, 0.02)?;
    let param = args.get_or("param", 100.0f64)?;
    let seed = args.get_or("seed", 1u64)?;
    let mechanism: Box<dyn Sanitizer> = match args.get("mechanism").unwrap_or("gaussian") {
        "gaussian" => Box::new(sanitize::GaussianMask {
            sigma_m: param,
            seed,
        }),
        "uniform" => Box::new(sanitize::UniformMask {
            radius_m: param,
            seed,
        }),
        "aggregate" => Box::new(sanitize::SpatialAggregation { cell_m: param }),
        "cloak" => Box::new(sanitize::SpatialCloaking {
            cell_m: param,
            k: args.get_or("k", 2usize)?,
        }),
        "temporal" => Box::new(sanitize::TemporalCloaking {
            window_secs: param.max(1.0) as i64,
        }),
        "mixzone" => {
            // Zones at the city center and two offsets.
            let c = GeneratorConfig::paper().city_center;
            Box::new(sanitize::MixZones {
                zones: vec![
                    sanitize::MixZone {
                        center: c,
                        radius_m: param,
                    },
                    sanitize::MixZone {
                        center: GeoPoint::new(c.lat + 0.02, c.lon + 0.02),
                        radius_m: param,
                    },
                ],
            })
        }
        other => return Err(format!("unknown mechanism '{other}'")),
    };
    let sanitized = mechanism.apply(&ds);
    let cfg = djcluster::DjConfig::default();
    let reference = attacks::extract_pois_dataset(&ds, &cfg);
    let attacked = attacks::extract_pois_dataset(&sanitized, &cfg);
    let (mut recall_sum, mut n) = (0.0, 0usize);
    for (user, ref_pois) in &reference {
        if ref_pois.is_empty() {
            continue;
        }
        let empty = Vec::new();
        let att = attacked.get(user).unwrap_or(&empty);
        recall_sum += metrics::poi_recall(ref_pois, att, 150.0);
        n += 1;
    }
    println!("mechanism:          {}", mechanism.name());
    println!(
        "POI recall (attack): {:.1} % over {n} users",
        100.0 * recall_sum / n.max(1) as f64
    );
    println!(
        "mean displacement:   {:.1} m",
        metrics::mean_displacement_m(&ds, &sanitized)
    );
    println!(
        "trace retention:     {:.1} %",
        100.0 * metrics::retention(&ds, &sanitized)
    );
    Ok(())
}

/// `gepeto predict`
pub fn predict(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 15, 0.02)?;
    let fraction = args.get_or("train-fraction", 0.6f64)?;
    let cfg = djcluster::DjConfig::default();
    let mut evaluated = 0usize;
    let (mut acc_sum, mut base_sum) = (0.0f64, 0.0f64);
    println!("user | states | transitions | MMC top-1 | baseline");
    println!("-----+--------+-------------+-----------+---------");
    for trail in ds.trails() {
        if let Some((_, report)) = attacks::evaluate_next_place(trail, &cfg, fraction) {
            evaluated += 1;
            acc_sum += report.accuracy();
            base_sum += report.baseline_accuracy();
            println!(
                "{:>4} | {:>6} | {:>11} | {:>8.0} % | {:>6.0} %",
                trail.user,
                report.states,
                report.transitions,
                100.0 * report.accuracy(),
                100.0 * report.baseline_accuracy()
            );
        }
    }
    if evaluated == 0 {
        return Err("no trail was predictable (try a larger --scale)".into());
    }
    println!(
        "\nmean over {evaluated} users: MMC {:.0} % vs baseline {:.0} %",
        100.0 * acc_sum / evaluated as f64,
        100.0 * base_sum / evaluated as f64
    );
    Ok(())
}

/// `gepeto viz`
pub fn viz(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 15, 0.01)?;
    let dir = std::path::PathBuf::from(args.get("out").ok_or("viz requires --out DIR")?);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let width = args.get_or("width", 900u32)?;

    // SVG: traces + trails + inferred homes.
    let cfg = djcluster::DjConfig::default();
    let pois = attacks::extract_pois_dataset(&ds, &cfg);
    let mut markers = Vec::new();
    let mut flat_pois = Vec::new();
    for (user, user_pois) in &pois {
        if let Some(home) = attacks::infer_home(user_pois) {
            markers.push((home.center, format!("home {user}")));
        }
        for p in user_pois {
            flat_pois.push((*user, p.clone()));
        }
    }
    let mut map = gepeto::viz::SvgMap::for_dataset(&ds, width);
    map.add_trails(&ds)
        .add_dataset(&ds, 1.5)
        .add_markers(&markers);
    std::fs::write(dir.join("map.svg"), map.render()).map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("traces.geojson"),
        gepeto::viz::geojson::dataset_points(&ds),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("trails.geojson"),
        gepeto::viz::geojson::dataset_trails(&ds),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("pois.geojson"),
        gepeto::viz::geojson::pois(&flat_pois),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "wrote map.svg, traces.geojson, trails.geojson, pois.geojson to {}",
        dir.display()
    );
    println!(
        "\ndensity ({} traces):\n{}",
        ds.num_traces(),
        gepeto::viz::ascii_density(&ds, 18, 60)
    );
    Ok(())
}

/// `gepeto semantics`
pub fn semantics(args: &Args) -> Result<(), String> {
    let ds = dataset_from(args, 10, 0.015)?;
    let cfg = djcluster::DjConfig::default();
    println!("user | label   | place (lat, lon)     | time share");
    println!("-----+---------+----------------------+-----------");
    for trail in ds.trails() {
        let (labeled, traj) = attacks::semantic_trajectory(trail, &cfg);
        let total: i64 = traj
            .visits
            .iter()
            .map(|v| v.duration_secs)
            .sum::<i64>()
            .max(1);
        for (poi, label) in &labeled {
            let label_time = traj.time_at(*label);
            // Only print each label once per user (home/work) plus the
            // aggregated leisure line.
            if *label == attacks::PoiLabel::Leisure
                && labeled
                    .iter()
                    .position(|(p, l)| *l == attacks::PoiLabel::Leisure && p == poi)
                    != labeled
                        .iter()
                        .position(|(_, l)| *l == attacks::PoiLabel::Leisure)
            {
                continue;
            }
            println!(
                "{:>4} | {:<7} | ({:.5}, {:.5}) | {:>8.0} %",
                trail.user,
                label.to_string(),
                poi.center.lat,
                poi.center.lon,
                100.0 * label_time as f64 / total as f64
            );
        }
    }
    println!(
        "\nThe adversary reads a person's life pattern — where they sleep, \
         work and spend free time — from coordinates alone (§II semantic \
         trajectories)."
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn report_runs_on_tiny_dataset() {
        assert!(report(&args("--users 2 --scale 0.002")).is_ok());
    }

    #[test]
    fn sample_runs_and_validates_technique() {
        assert!(sample(&args("--users 2 --scale 0.002 --window 60")).is_ok());
        assert!(sample(&args("--users 2 --scale 0.002 --technique middle")).is_ok());
        let err = sample(&args("--users 2 --scale 0.002 --technique bogus")).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn kmeans_runs_and_validates_distance() {
        assert!(kmeans(&args("--users 2 --scale 0.002 --k 3 --max-iter 3")).is_ok());
        assert!(kmeans(&args("--users 2 --scale 0.002 --distance nope")).is_err());
    }

    #[test]
    fn djcluster_runs_small() {
        assert!(djcluster(&args("--users 2 --scale 0.002 --mr-rtree false")).is_ok());
    }

    #[test]
    fn parse_bytes_handles_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("16M"), Some(16 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes(" 1k "), Some(1024));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("-1"), None);
    }

    #[test]
    fn sample_accepts_memory_budget() {
        assert!(sample(&args("--users 2 --scale 0.002 --memory-budget 1")).is_ok());
        let err = sample(&args("--users 2 --scale 0.002 --memory-budget huge")).unwrap_err();
        assert!(err.contains("memory-budget"));
    }

    #[test]
    fn synth_runs_sampling_under_tiny_budget() {
        assert!(synth(&args("--users 50 --chunk-mb 1 --memory-budget 1 --summary")).is_ok());
    }

    #[test]
    fn synth_runs_kmeans_workload() {
        assert!(synth(&args(
            "--users 30 --chunk-mb 1 --workload kmeans --k 3 --max-iter 2 --memory-budget 64"
        ))
        .is_ok());
        let err = synth(&args("--users 10 --workload bogus")).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn synth_rejects_zero_users() {
        assert!(synth(&args("--users 0")).is_err());
    }

    #[test]
    fn sanitize_validates_mechanism() {
        assert!(sanitize(&args(
            "--users 2 --scale 0.003 --mechanism gaussian --param 50"
        ))
        .is_ok());
        assert!(sanitize(&args(
            "--users 2 --scale 0.003 --mechanism temporal --param 300"
        ))
        .is_ok());
        let err = sanitize(&args("--users 2 --scale 0.003 --mechanism quantum")).unwrap_err();
        assert!(err.contains("quantum"));
    }

    #[test]
    fn viz_requires_out_dir() {
        let err = viz(&args("--users 2 --scale 0.002")).unwrap_err();
        assert!(err.contains("--out"));
        let dir = std::env::temp_dir().join("gepeto-cli-viz-test");
        let flags = format!("--users 2 --scale 0.002 --out {}", dir.display());
        assert!(viz(&args(&flags)).is_ok());
        assert!(dir.join("map.svg").exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn kmeans_metrics_out_writes_jsonl() {
        let path = std::env::temp_dir().join("gepeto-cli-metrics-test.jsonl");
        let flags = format!(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --metrics-out {}",
            path.display()
        );
        assert!(kmeans(&args(&flags)).is_ok());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 0);
        assert!(body.contains("kmeans.iteration"));
        assert!(body.contains("phase.map"));
        assert!(body.contains("locality"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn summary_and_explain_flags_run() {
        assert!(sample(&args("--users 2 --scale 0.002 --summary")).is_ok());
        assert!(kmeans(&args(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --explain --crash 1@3"
        ))
        .is_ok());
        assert!(djcluster(&args(
            "--users 2 --scale 0.002 --mr-rtree false --summary --explain"
        ))
        .is_ok());
    }

    #[test]
    fn malformed_flag_value_is_an_error() {
        assert!(report(&args("--users abc")).is_err());
        assert!(sample(&args("--users 2 --scale 0.002 --window abc")).is_err());
    }

    #[test]
    fn chaos_flags_parse_and_run() {
        // A crashed node mid-run must not change the command's success.
        assert!(sample(&args("--users 2 --scale 0.002 --crash 0@30")).is_ok());
        assert!(kmeans(&args(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --crash 1@40,2@80 --degrade 0@0@2.5"
        ))
        .is_ok());
        let err = sample(&args("--users 2 --scale 0.002 --crash zero@30")).unwrap_err();
        assert!(err.contains("bad node"));
        let err = sample(&args("--users 2 --scale 0.002 --crash 0")).unwrap_err();
        assert!(err.contains("NODE@SECONDS"));
        let err = kmeans(&args("--users 2 --scale 0.002 --degrade 0@1")).unwrap_err();
        assert!(err.contains("NODE@SECONDS@FACTOR"));
    }

    #[test]
    fn io_fault_flags_parse_and_run() {
        // A storage-fault soup under a starvation budget must still
        // succeed — repairs are the engine's job, not the caller's.
        assert!(sample(&args(
            "--users 2 --scale 0.002 --memory-budget 1 \
             --io-faults eio=0.5,torn=0.5,bitrot=0.3,seed=9 --summary"
        ))
        .is_ok());
        assert!(kmeans(&args(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --memory-budget 1 \
             --io-faults torn=1.0,slow=0.5,streak=1"
        ))
        .is_ok());
        let err = sample(&args("--users 2 --scale 0.002 --io-faults eio=oops")).unwrap_err();
        assert!(err.contains("eio"), "{err}");
        let err = sample(&args("--users 2 --scale 0.002 --io-faults frob=1")).unwrap_err();
        assert!(err.contains("unknown"), "{err}");
    }

    #[test]
    fn job_failures_carry_the_exit_code_prefix() {
        // All nodes dead at t=0: retries exhaust and the error string is
        // classified as a job failure (exit 3), not a usage error.
        let err = kmeans(&args(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --crash 0@0,1@0,2@0,3@0",
        ))
        .unwrap_err();
        assert!(err.starts_with(JOB_FAILED_PREFIX), "{err}");
        // Usage errors stay unprefixed.
        let err = kmeans(&args("--users abc")).unwrap_err();
        assert!(!err.starts_with(JOB_FAILED_PREFIX), "{err}");
    }

    #[test]
    fn watch_and_prom_out_write_a_live_exposition_under_chaos() {
        let path = std::env::temp_dir().join("gepeto-cli-prom-test.prom");
        let flags = format!(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --crash 1@40 \
             --watch=0.05 --prom-out {}",
            path.display()
        );
        assert!(kmeans(&args(&flags)).is_ok());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(
            body.contains("# TYPE gepeto_map_tasks_done counter"),
            "{body}"
        );
        assert!(body.contains("gepeto_jobs_finished_total"), "{body}");
        assert!(body.contains("le=\"+Inf\""), "{body}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn watch_interval_parses_and_rejects_garbage() {
        assert_eq!(watch_interval(&args("--watch")).unwrap(), Some(2.0));
        assert_eq!(watch_interval(&args("--watch=0.5")).unwrap(), Some(0.5));
        assert_eq!(watch_interval(&args("--k 3")).unwrap(), None);
        assert!(watch_interval(&args("--watch=fast")).is_err());
        assert!(watch_interval(&args("--watch=-1")).is_err());
    }

    #[test]
    fn metrics_out_survives_an_aborted_run() {
        // Crash every node at t=0: the job cannot finish and the
        // command must fail — but the event stream still lands.
        let path = std::env::temp_dir().join("gepeto-cli-abort-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let flags = format!(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 \
             --crash 0@0,1@0,2@0,3@0 --metrics-out {}",
            path.display()
        );
        assert!(kmeans(&args(&flags)).is_err());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 0);
        assert!(body.contains("chaos.crash"), "{body}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn folded_out_writes_host_and_virtual_stacks() {
        let path = std::env::temp_dir().join("gepeto-cli-folded-test.folded");
        let vpath = std::env::temp_dir().join("gepeto-cli-folded-test.folded.virtual");
        let flags = format!(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --folded-out {}",
            path.display()
        );
        assert!(kmeans(&args(&flags)).is_ok());
        let host = std::fs::read_to_string(&path).unwrap();
        assert!(host.lines().all(|l| l.rsplit_once(' ').is_some()));
        assert!(host.contains("kmeans"), "{host}");
        let virt = std::fs::read_to_string(&vpath).unwrap();
        assert!(virt.contains(";map;"), "{virt}");
        // The ledger attributes heap bytes to every span, so the alloc
        // fold exists and its frames carry numeric exclusive weights.
        let apath = std::env::temp_dir().join("gepeto-cli-folded-test.folded.alloc");
        let alloc = std::fs::read_to_string(&apath).unwrap();
        assert!(alloc.lines().count() > 0);
        assert!(alloc.lines().all(|l| l
            .rsplit_once(' ')
            .is_some_and(|(_, w)| w.parse::<u64>().is_ok())));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(vpath);
        let _ = std::fs::remove_file(apath);
    }

    #[test]
    fn driver_retries_use_the_checkpointed_drivers() {
        assert!(kmeans(&args(
            "--users 2 --scale 0.002 --k 2 --max-iter 2 --driver-retries 2 --retry-backoff 1"
        ))
        .is_ok());
        assert!(djcluster(&args(
            "--users 2 --scale 0.002 --mr-rtree false --driver-retries 2"
        ))
        .is_ok());
    }
}
