//! Timestamps and the civil-date arithmetic needed by the GeoLife format.
//!
//! GeoLife PLT lines carry the date three times: as a fractional number of
//! days elapsed since 1899-12-30 (the spreadsheet epoch), and as
//! `YYYY-MM-DD` / `HH:MM:SS` strings. Internally GEPETO uses a single
//! integer: seconds since the Unix epoch (GeoLife has one-second
//! resolution). This module provides the conversions between the three
//! representations, with proleptic-Gregorian day arithmetic implemented
//! from scratch (Howard Hinnant's `days_from_civil` algorithm).

use serde::{Deserialize, Serialize};

/// Seconds between 1899-12-30T00:00:00 and 1970-01-01T00:00:00.
/// (25 569 days; the spreadsheet epoch used by GeoLife's "days" field.)
pub const SPREADSHEET_EPOCH_OFFSET_SECS: i64 = 25_569 * 86_400;

/// A point in time with one-second resolution, stored as seconds since the
/// Unix epoch. Negative values denote pre-1970 instants.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Builds a timestamp from a civil (proleptic Gregorian) date and time
    /// of day. Returns `None` when any component is out of range.
    pub fn from_civil(y: i32, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Option<Self> {
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        if hh > 23 || mm > 59 || ss > 59 {
            return None;
        }
        let days = days_from_civil(y, m, d);
        Some(Self(
            days * 86_400 + i64::from(hh) * 3600 + i64::from(mm) * 60 + i64::from(ss),
        ))
    }

    /// Decomposes into `(year, month, day, hour, minute, second)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        let hh = (secs / 3600) as u32;
        let mm = (secs % 3600 / 60) as u32;
        let ss = (secs % 60) as u32;
        (y, m, d, hh, mm, ss)
    }

    /// The fractional "days since 1899-12-30" value stored in PLT field 5.
    pub fn to_spreadsheet_days(self) -> f64 {
        (self.0 + SPREADSHEET_EPOCH_OFFSET_SECS) as f64 / 86_400.0
    }

    /// Reconstructs a timestamp from a spreadsheet-days value, rounding to
    /// the nearest second.
    pub fn from_spreadsheet_days(days: f64) -> Self {
        Self((days * 86_400.0).round() as i64 - SPREADSHEET_EPOCH_OFFSET_SECS)
    }

    /// Raw seconds since the Unix epoch.
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// `self + dt` seconds.
    pub const fn plus(self, dt: i64) -> Self {
        Self(self.0 + dt)
    }

    /// Signed difference `self - other` in seconds.
    pub const fn delta(self, other: Self) -> i64 {
        self.0 - other.0
    }
}

/// Days from the Unix epoch for a civil date (proleptic Gregorian).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a number of days from the Unix epoch.
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Whether `y` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Number of days in month `m` of year `y`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(y) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn spreadsheet_epoch() {
        // 1899-12-30 is exactly -25569 days from the Unix epoch.
        assert_eq!(days_from_civil(1899, 12, 30), -25_569);
    }

    #[test]
    fn known_dates_round_trip() {
        for &(y, m, d) in &[
            (2009, 10, 11),
            (2000, 2, 29),
            (1900, 2, 28),
            (2012, 8, 31),
            (2007, 4, 1),
            (1970, 1, 1),
            (2100, 3, 1),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn civil_timestamp_round_trip() {
        let t = Timestamp::from_civil(2009, 10, 11, 14, 4, 30).unwrap();
        assert_eq!(t.to_civil(), (2009, 10, 11, 14, 4, 30));
    }

    #[test]
    fn rejects_invalid_components() {
        assert!(Timestamp::from_civil(2009, 13, 1, 0, 0, 0).is_none());
        assert!(Timestamp::from_civil(2009, 0, 1, 0, 0, 0).is_none());
        assert!(Timestamp::from_civil(2009, 2, 29, 0, 0, 0).is_none()); // not leap
        assert!(Timestamp::from_civil(2008, 2, 29, 0, 0, 0).is_some()); // leap
        assert!(Timestamp::from_civil(2009, 4, 31, 0, 0, 0).is_none());
        assert!(Timestamp::from_civil(2009, 1, 1, 24, 0, 0).is_none());
        assert!(Timestamp::from_civil(2009, 1, 1, 0, 60, 0).is_none());
        assert!(Timestamp::from_civil(2009, 1, 1, 0, 0, 60).is_none());
    }

    #[test]
    fn spreadsheet_days_matches_geolife_example() {
        // Figure 1 of the paper shows a GeoLife line for 2009-10-11 14:04:30
        // whose days field is 40097.5864583333.
        let t = Timestamp::from_civil(2009, 10, 11, 14, 4, 30).unwrap();
        let days = t.to_spreadsheet_days();
        assert!((days - 40_097.586_458_333_3).abs() < 1e-8, "{days}");
        assert_eq!(Timestamp::from_spreadsheet_days(days), t);
    }

    #[test]
    fn pre_epoch_timestamps() {
        let t = Timestamp::from_civil(1960, 6, 15, 12, 30, 45).unwrap();
        assert!(t.secs() < 0);
        assert_eq!(t.to_civil(), (1960, 6, 15, 12, 30, 45));
    }

    #[test]
    fn arithmetic_helpers() {
        let t = Timestamp(100);
        assert_eq!(t.plus(20), Timestamp(120));
        assert_eq!(t.plus(-200), Timestamp(-100));
        assert_eq!(Timestamp(120).delta(t), 20);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(2001));
    }
}
