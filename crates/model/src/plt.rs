//! The GeoLife *PLT* text format (Figure 1 of the paper).
//!
//! Each line of a GeoLife trajectory file describes one mobility trace:
//!
//! ```text
//! 39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30
//! ```
//!
//! Field 1/2: latitude/longitude in decimal degrees. Field 3: always `0`
//! ("has no meaning for this particular dataset"). Field 4: altitude in
//! feet in real GeoLife; we store meters and do not convert, as the paper
//! never uses it. Field 5: fractional days since 1899-12-30. Fields 6/7:
//! the date and time as strings — the timestamp actually used.
//!
//! Real GeoLife files also start with a 6-line header, which
//! [`parse_file`] skips, so genuine `.plt` files parse unchanged.

use crate::{GeoPoint, MobilityTrace, Timestamp, UserId};
use std::fmt::Write as _;

/// Error cases when decoding a PLT line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PltError {
    /// The line does not have exactly 7 comma-separated fields.
    FieldCount(usize),
    /// A numeric field failed to parse; payload is the field index (0-based).
    BadNumber(usize),
    /// The date or time string is malformed or out of range.
    BadTimestamp,
    /// The coordinates are outside the WGS-84 envelope.
    BadCoordinate,
}

impl std::fmt::Display for PltError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PltError::FieldCount(n) => write!(f, "expected 7 fields, found {n}"),
            PltError::BadNumber(i) => write!(f, "field {i} is not a valid number"),
            PltError::BadTimestamp => write!(f, "malformed date/time fields"),
            PltError::BadCoordinate => write!(f, "coordinates outside WGS-84 range"),
        }
    }
}

impl std::error::Error for PltError {}

/// Formats one trace as a PLT line (no trailing newline).
pub fn format_line(trace: &MobilityTrace) -> String {
    let mut s = String::with_capacity(72);
    let (y, mo, d, hh, mm, ss) = trace.timestamp.to_civil();
    // GeoLife prints 6 decimal places for coordinates and 10 for days.
    let _ = write!(
        s,
        "{:.6},{:.6},0,{},{:.10},{:04}-{:02}-{:02},{:02}:{:02}:{:02}",
        trace.point.lat,
        trace.point.lon,
        trace.altitude.round() as i64,
        trace.timestamp.to_spreadsheet_days(),
        y,
        mo,
        d,
        hh,
        mm,
        ss
    );
    s
}

/// Parses one PLT line into a trace owned by `user`.
pub fn parse_line(user: UserId, line: &str) -> Result<MobilityTrace, PltError> {
    let fields: Vec<&str> = line.trim_end().split(',').collect();
    if fields.len() != 7 {
        return Err(PltError::FieldCount(fields.len()));
    }
    let lat: f64 = fields[0].parse().map_err(|_| PltError::BadNumber(0))?;
    let lon: f64 = fields[1].parse().map_err(|_| PltError::BadNumber(1))?;
    let altitude: f64 = fields[3].parse().map_err(|_| PltError::BadNumber(3))?;
    let point = GeoPoint::new(lat, lon);
    if !point.is_valid() {
        return Err(PltError::BadCoordinate);
    }
    let timestamp = parse_date_time(fields[5], fields[6]).ok_or(PltError::BadTimestamp)?;
    Ok(MobilityTrace::with_altitude(
        user,
        point,
        timestamp,
        altitude as f32,
    ))
}

/// Parses a whole PLT file body for one user, skipping the 6-line GeoLife
/// header if present and ignoring blank lines. Malformed data lines are
/// returned as errors along with their line number (1-based).
pub fn parse_file(user: UserId, content: &str) -> (Vec<MobilityTrace>, Vec<(usize, PltError)>) {
    let mut traces = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(user, line) {
            Ok(t) => traces.push(t),
            Err(e) => {
                // Real GeoLife files open with a 6-line preamble
                // ("Geolife trajectory", "WGS 84", "Altitude is in Feet",
                // ...). Silently skip header-looking lines at the top.
                if idx < 6 && !line.contains(',') {
                    continue;
                }
                errors.push((idx + 1, e));
            }
        }
    }
    (traces, errors)
}

fn parse_date_time(date: &str, time: &str) -> Option<Timestamp> {
    let mut dp = date.split('-');
    let y: i32 = dp.next()?.parse().ok()?;
    let mo: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() {
        return None;
    }
    let mut tp = time.split(':');
    let hh: u32 = tp.next()?.parse().ok()?;
    let mm: u32 = tp.next()?.parse().ok()?;
    let ss: u32 = tp.next()?.parse().ok()?;
    if tp.next().is_some() {
        return None;
    }
    Timestamp::from_civil(y, mo, d, hh, mm, ss)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30";

    #[test]
    fn parses_the_paper_example() {
        let t = parse_line(3, EXAMPLE).unwrap();
        assert_eq!(t.user, 3);
        assert!((t.point.lat - 39.906631).abs() < 1e-9);
        assert!((t.point.lon - 116.385564).abs() < 1e-9);
        assert_eq!(t.altitude, 492.0);
        assert_eq!(t.timestamp.to_civil(), (2009, 10, 11, 14, 4, 30));
    }

    #[test]
    fn format_parse_round_trip() {
        let t = parse_line(0, EXAMPLE).unwrap();
        let line = format_line(&t);
        let t2 = parse_line(0, &line).unwrap();
        assert!((t.point.lat - t2.point.lat).abs() < 1e-6);
        assert!((t.point.lon - t2.point.lon).abs() < 1e-6);
        assert_eq!(t.timestamp, t2.timestamp);
        assert_eq!(t.altitude, t2.altitude);
    }

    #[test]
    fn formatted_line_matches_geolife_shape() {
        let t = parse_line(0, EXAMPLE).unwrap();
        let line = format_line(&t);
        assert_eq!(line.split(',').count(), 7);
        assert!(line.contains(",0,")); // the meaningless third field
        assert!(line.ends_with("14:04:30"));
        // the days field agrees with the paper's example to 1e-8
        let days: f64 = line.split(',').nth(4).unwrap().parse().unwrap();
        assert!((days - 40_097.586_458_333_3).abs() < 1e-8);
    }

    #[test]
    fn rejects_wrong_field_count() {
        assert_eq!(parse_line(0, "1.0,2.0,0,0"), Err(PltError::FieldCount(4)));
    }

    #[test]
    fn rejects_bad_numbers_and_coords() {
        assert_eq!(
            parse_line(0, "abc,116.0,0,0,0,2009-10-11,14:04:30"),
            Err(PltError::BadNumber(0))
        );
        assert_eq!(
            parse_line(0, "95.0,116.0,0,0,0,2009-10-11,14:04:30"),
            Err(PltError::BadCoordinate)
        );
        assert_eq!(
            parse_line(0, "39.0,116.0,0,0,0,2009-13-11,14:04:30"),
            Err(PltError::BadTimestamp)
        );
        assert_eq!(
            parse_line(0, "39.0,116.0,0,0,0,2009-10-11,25:04:30"),
            Err(PltError::BadTimestamp)
        );
    }

    #[test]
    fn parse_file_skips_geolife_header() {
        let content = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30\n";
        let (traces, errors) = parse_file(9, content);
        // line 5 of the header contains commas and is reported as an error;
        // everything comma-free in the preamble is skipped silently.
        assert_eq!(traces.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 5);
    }

    #[test]
    fn parse_file_reports_bad_body_lines() {
        let content = format!("{EXAMPLE}\nnot,a,valid,line\n{EXAMPLE}\n");
        let (traces, errors) = parse_file(1, &content);
        assert_eq!(traces.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 2);
    }

    #[test]
    fn blank_lines_ignored() {
        let content = format!("\n{EXAMPLE}\n\n");
        let (traces, errors) = parse_file(1, &content);
        assert_eq!(traces.len(), 1);
        assert!(errors.is_empty());
    }
}
