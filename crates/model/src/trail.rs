//! Trails (one user's time-ordered traces) and geolocated datasets.

use crate::{MobilityTrace, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A trail of traces: the movements of a single individual over time,
/// ordered by timestamp (ties broken arbitrarily but deterministically).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trail {
    /// Owner of the trail.
    pub user: UserId,
    traces: Vec<MobilityTrace>,
}

impl Trail {
    /// Creates a trail, sorting the traces by timestamp.
    pub fn new(user: UserId, mut traces: Vec<MobilityTrace>) -> Self {
        traces.sort_by_key(|t| t.timestamp);
        Self { user, traces }
    }

    /// An empty trail for `user`.
    pub fn empty(user: UserId) -> Self {
        Self {
            user,
            traces: Vec::new(),
        }
    }

    /// Appends a trace, keeping the trail sorted. Appending in timestamp
    /// order is O(1); out-of-order appends fall back to a sorted insert.
    pub fn push(&mut self, trace: MobilityTrace) {
        match self.traces.last() {
            Some(last) if last.timestamp > trace.timestamp => {
                let idx = self
                    .traces
                    .partition_point(|t| t.timestamp <= trace.timestamp);
                self.traces.insert(idx, trace);
            }
            _ => self.traces.push(trace),
        }
    }

    /// The traces, sorted by timestamp.
    pub fn traces(&self) -> &[MobilityTrace] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the trail holds no trace.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Consumes the trail, returning its sorted traces.
    pub fn into_traces(self) -> Vec<MobilityTrace> {
        self.traces
    }

    /// Total time span covered, in seconds (0 for fewer than two traces).
    pub fn duration_secs(&self) -> i64 {
        match (self.traces.first(), self.traces.last()) {
            (Some(a), Some(b)) => b.timestamp.delta(a.timestamp),
            _ => 0,
        }
    }

    /// Mean interval between consecutive traces, in seconds.
    pub fn mean_period_secs(&self) -> f64 {
        if self.traces.len() < 2 {
            return 0.0;
        }
        self.duration_secs() as f64 / (self.traces.len() - 1) as f64
    }

    /// Splits the trail into recording sessions: maximal runs of traces
    /// whose consecutive gaps are at most `max_gap_secs` (GeoLife's
    /// "trajectories" — the logger was on continuously).
    pub fn sessions(&self, max_gap_secs: i64) -> Vec<&[MobilityTrace]> {
        assert!(max_gap_secs > 0, "session gap must be positive");
        let mut out = Vec::new();
        let mut start = 0usize;
        for i in 1..self.traces.len() {
            if self.traces[i].timestamp.delta(self.traces[i - 1].timestamp) > max_gap_secs {
                out.push(&self.traces[start..i]);
                start = i;
            }
        }
        if start < self.traces.len() {
            out.push(&self.traces[start..]);
        }
        out
    }
}

/// A geolocated dataset: trails from many individuals. This is the unit the
/// paper's sanitizers and inference attacks operate on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    trails: BTreeMap<UserId, Trail>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dataset from a flat bag of traces, grouping by user and
    /// sorting each trail by time — the shape a reducer output or a raw
    /// DFS scan comes in.
    pub fn from_traces(traces: impl IntoIterator<Item = MobilityTrace>) -> Self {
        let mut per_user: BTreeMap<UserId, Vec<MobilityTrace>> = BTreeMap::new();
        for t in traces {
            per_user.entry(t.user).or_default().push(t);
        }
        let trails = per_user
            .into_iter()
            .map(|(u, ts)| (u, Trail::new(u, ts)))
            .collect();
        Self { trails }
    }

    /// Builds a dataset from complete trails. Trails with duplicate user
    /// ids are merged.
    pub fn from_trails(trails: impl IntoIterator<Item = Trail>) -> Self {
        let mut ds = Self::new();
        for trail in trails {
            ds.merge_trail(trail);
        }
        ds
    }

    /// Appends one trace to its user's trail, creating the trail on first
    /// sight. Appending a user's traces in time order is O(1) per trace,
    /// so streaming a user-by-user, time-ordered scan (the DFS layout)
    /// never re-sorts.
    pub fn push_trace(&mut self, trace: MobilityTrace) {
        self.trails
            .entry(trace.user)
            .or_insert_with(|| Trail::empty(trace.user))
            .push(trace);
    }

    /// Inserts or merges a trail.
    pub fn merge_trail(&mut self, trail: Trail) {
        match self.trails.get_mut(&trail.user) {
            Some(existing) => {
                for t in trail.into_traces() {
                    existing.push(t);
                }
            }
            None => {
                self.trails.insert(trail.user, trail);
            }
        }
    }

    /// The trail of `user`, if present.
    pub fn trail(&self, user: UserId) -> Option<&Trail> {
        self.trails.get(&user)
    }

    /// Iterator over trails in ascending user order.
    pub fn trails(&self) -> impl Iterator<Item = &Trail> {
        self.trails.values()
    }

    /// Iterator over all traces of all users (user order, then time order).
    pub fn iter_traces(&self) -> impl Iterator<Item = &MobilityTrace> {
        self.trails.values().flat_map(|t| t.traces().iter())
    }

    /// All traces flattened into one vector (user order, then time order).
    pub fn to_traces(&self) -> Vec<MobilityTrace> {
        self.iter_traces().copied().collect()
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> usize {
        self.trails.len()
    }

    /// Total number of traces across all trails.
    pub fn num_traces(&self) -> usize {
        self.trails.values().map(Trail::len).sum()
    }

    /// Whether the dataset holds no trace at all.
    pub fn is_empty(&self) -> bool {
        self.num_traces() == 0
    }

    /// Approximate serialized size in bytes if written as PLT text.
    pub fn approx_plt_bytes(&self) -> usize {
        self.iter_traces().map(|t| t.approx_plt_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeoPoint, Timestamp};

    fn t(user: UserId, secs: i64) -> MobilityTrace {
        MobilityTrace::new(user, GeoPoint::new(1.0, 2.0), Timestamp(secs))
    }

    #[test]
    fn trail_sorts_on_construction() {
        let trail = Trail::new(1, vec![t(1, 30), t(1, 10), t(1, 20)]);
        let secs: Vec<i64> = trail.traces().iter().map(|x| x.timestamp.secs()).collect();
        assert_eq!(secs, vec![10, 20, 30]);
    }

    #[test]
    fn trail_push_keeps_order() {
        let mut trail = Trail::empty(1);
        trail.push(t(1, 10));
        trail.push(t(1, 30));
        trail.push(t(1, 20)); // out of order
        let secs: Vec<i64> = trail.traces().iter().map(|x| x.timestamp.secs()).collect();
        assert_eq!(secs, vec![10, 20, 30]);
    }

    #[test]
    fn trail_stats() {
        let trail = Trail::new(1, vec![t(1, 0), t(1, 10), t(1, 30)]);
        assert_eq!(trail.duration_secs(), 30);
        assert!((trail.mean_period_secs() - 15.0).abs() < 1e-12);
        assert_eq!(Trail::empty(9).duration_secs(), 0);
        assert_eq!(Trail::empty(9).mean_period_secs(), 0.0);
    }

    #[test]
    fn sessions_split_at_gaps() {
        let trail = Trail::new(1, vec![t(1, 0), t(1, 5), t(1, 10), t(1, 500), t(1, 505)]);
        let sessions = trail.sessions(300);
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 3);
        assert_eq!(sessions[1].len(), 2);
        // One big gap tolerance → a single session.
        assert_eq!(trail.sessions(1_000).len(), 1);
        // Empty trail → no sessions.
        assert!(Trail::empty(2).sessions(300).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sessions_reject_zero_gap() {
        let _ = Trail::empty(1).sessions(0);
    }

    #[test]
    fn dataset_groups_by_user() {
        let ds = Dataset::from_traces(vec![t(2, 5), t(1, 1), t(2, 3), t(1, 2)]);
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_traces(), 4);
        assert_eq!(ds.trail(1).unwrap().len(), 2);
        assert_eq!(ds.trail(2).unwrap().len(), 2);
        // trail 2 sorted
        let secs: Vec<i64> = ds
            .trail(2)
            .unwrap()
            .traces()
            .iter()
            .map(|x| x.timestamp.secs())
            .collect();
        assert_eq!(secs, vec![3, 5]);
    }

    #[test]
    fn dataset_merge_trails_with_same_user() {
        let a = Trail::new(1, vec![t(1, 1), t(1, 5)]);
        let b = Trail::new(1, vec![t(1, 3)]);
        let ds = Dataset::from_trails(vec![a, b]);
        assert_eq!(ds.num_users(), 1);
        let secs: Vec<i64> = ds
            .trail(1)
            .unwrap()
            .traces()
            .iter()
            .map(|x| x.timestamp.secs())
            .collect();
        assert_eq!(secs, vec![1, 3, 5]);
    }

    #[test]
    fn push_trace_streams_into_trails() {
        let mut ds = Dataset::new();
        for tr in [t(2, 5), t(1, 1), t(2, 3), t(1, 2)] {
            ds.push_trace(tr);
        }
        assert_eq!(
            ds,
            Dataset::from_traces(vec![t(2, 5), t(1, 1), t(2, 3), t(1, 2)])
        );
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        assert!(ds.is_empty());
        assert_eq!(ds.num_traces(), 0);
        assert_eq!(ds.num_users(), 0);
        assert!(ds.trail(0).is_none());
    }

    #[test]
    fn round_trip_traces() {
        let original = vec![t(1, 1), t(1, 2), t(2, 1)];
        let ds = Dataset::from_traces(original.clone());
        let mut back = ds.to_traces();
        back.sort_by_key(|x| (x.user, x.timestamp));
        assert_eq!(back, original);
    }
}
