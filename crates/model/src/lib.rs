#![warn(missing_docs)]

//! # gepeto-model
//!
//! The mobility-trace data model shared by every crate of the GEPETO
//! workspace, mirroring Section II of *MapReducing GEPETO* (IPDPSW 2013).
//!
//! A [`MobilityTrace`] is the atom of location data: an identifier, a
//! spatial coordinate and a timestamp (plus optional extras such as
//! altitude). A [`Trail`] is the time-ordered collection of traces of one
//! individual, and a [`Dataset`] is a set of trails from different
//! individuals.
//!
//! The [`plt`] module implements the GeoLife *PLT* text format used by the
//! paper's evaluation dataset (Figure 1 of the paper), so that real GeoLife
//! files can be dropped in for the synthetic generator's output.

pub mod plt;
pub mod point;
pub mod time;
pub mod trace;
pub mod trail;

pub use point::GeoPoint;
pub use time::Timestamp;
pub use trace::{Identifier, MobilityTrace, UserId};
pub use trail::{Dataset, Trail};
