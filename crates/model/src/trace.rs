//! Mobility traces and identifiers.

use crate::{GeoPoint, Timestamp};
use serde::{Deserialize, Serialize};

/// Numeric user identifier used throughout the workspace. GeoLife names
/// user directories `000`–`181`; we keep the same small integers.
pub type UserId = u32;

/// The identifier attached to a trail of traces (Section II of the paper):
/// the real identity of the device, a pseudonym that still links traces of
/// the same user, or nothing at all when full anonymity is required.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Identifier {
    /// A real-world identity (e.g. "Alice's phone").
    Real(String),
    /// A linkable pseudonym.
    Pseudonym(u64),
    /// Full anonymity: traces cannot be linked by identifier.
    Unknown,
}

impl Identifier {
    /// Whether traces carrying this identifier can be linked to each other.
    pub fn is_linkable(&self) -> bool {
        !matches!(self, Identifier::Unknown)
    }
}

/// A single mobility trace: *who* was *where* at *what time*, plus the
/// auxiliary altitude field GeoLife records (meters, often junk values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityTrace {
    /// Owner of the trace. For pseudonymized datasets this is the
    /// pseudonym's index; attacks treat it as opaque.
    pub user: UserId,
    /// Spatial coordinate in decimal degrees.
    pub point: GeoPoint,
    /// Time of observation (one-second resolution, like GeoLife).
    pub timestamp: Timestamp,
    /// Altitude in meters as logged by the GPS device (GeoLife keeps this
    /// even when meaningless; `f32` is plenty).
    pub altitude: f32,
}

impl MobilityTrace {
    /// Creates a trace with a zero altitude.
    pub fn new(user: UserId, point: GeoPoint, timestamp: Timestamp) -> Self {
        Self {
            user,
            point,
            timestamp,
            altitude: 0.0,
        }
    }

    /// Creates a trace with an explicit altitude.
    pub fn with_altitude(
        user: UserId,
        point: GeoPoint,
        timestamp: Timestamp,
        altitude: f32,
    ) -> Self {
        Self {
            user,
            point,
            timestamp,
            altitude,
        }
    }

    /// Approximate size of this trace when serialized as a GeoLife PLT text
    /// line (used to size DFS chunks the way HDFS sizes text blocks).
    pub fn approx_plt_bytes(&self) -> usize {
        // "39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30\n"
        // is 64 bytes; real lines hover in 60..70.
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr() -> MobilityTrace {
        MobilityTrace::new(
            7,
            GeoPoint::new(39.9, 116.3),
            Timestamp::from_civil(2009, 10, 11, 14, 4, 30).unwrap(),
        )
    }

    #[test]
    fn constructors() {
        let t = tr();
        assert_eq!(t.user, 7);
        assert_eq!(t.altitude, 0.0);
        let t2 = MobilityTrace::with_altitude(7, t.point, t.timestamp, 492.0);
        assert_eq!(t2.altitude, 492.0);
    }

    #[test]
    fn identifier_linkability() {
        assert!(Identifier::Real("alice".into()).is_linkable());
        assert!(Identifier::Pseudonym(42).is_linkable());
        assert!(!Identifier::Unknown.is_linkable());
    }

    #[test]
    fn plt_size_estimate_is_sane() {
        let t = tr();
        let b = t.approx_plt_bytes();
        assert!((50..=80).contains(&b));
    }
}
