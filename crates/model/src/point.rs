//! Spatial coordinates.

use serde::{Deserialize, Serialize};

/// A WGS-84 position in decimal degrees, as stored in GeoLife logs.
///
/// Latitude is in `[-90, 90]`, longitude in `[-180, 180]`. The type is a
/// plain value type: all geometry (distances, curves, indexes) lives in
/// `gepeto-geo`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees.
    pub lat: f64,
    /// Longitude in decimal degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude in decimal degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Whether the coordinates are finite and inside the WGS-84 envelope.
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }

    /// Component-wise minimum (useful for bounding boxes).
    pub fn min(self, other: Self) -> Self {
        Self::new(self.lat.min(other.lat), self.lon.min(other.lon))
    }

    /// Component-wise maximum (useful for bounding boxes).
    pub fn max(self, other: Self) -> Self {
        Self::new(self.lat.max(other.lat), self.lon.max(other.lon))
    }
}

impl From<(f64, f64)> for GeoPoint {
    fn from((lat, lon): (f64, f64)) -> Self {
        Self::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_points() {
        assert!(GeoPoint::new(39.9, 116.3).is_valid());
        assert!(GeoPoint::new(-90.0, -180.0).is_valid());
        assert!(GeoPoint::new(90.0, 180.0).is_valid());
        assert!(GeoPoint::new(0.0, 0.0).is_valid());
    }

    #[test]
    fn invalid_points() {
        assert!(!GeoPoint::new(90.1, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, -180.5).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, f64::INFINITY).is_valid());
    }

    #[test]
    fn min_max() {
        let a = GeoPoint::new(1.0, 4.0);
        let b = GeoPoint::new(2.0, 3.0);
        assert_eq!(a.min(b), GeoPoint::new(1.0, 3.0));
        assert_eq!(a.max(b), GeoPoint::new(2.0, 4.0));
    }

    #[test]
    fn from_tuple() {
        let p: GeoPoint = (39.9, 116.3).into();
        assert_eq!(p.lat, 39.9);
        assert_eq!(p.lon, 116.3);
    }
}
