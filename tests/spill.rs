//! Out-of-core execution contract: routing a shuffle through the
//! spill-to-disk path must never change a single output bit relative to
//! the all-in-memory path, and a node crash in the middle of a spilling
//! run must recover to the same bits. Inputs come from `gepeto-synth`,
//! the deterministic streaming workload generator, so every case is
//! reproducible from its `(users, seed)` pair.

use gepeto::prelude::*;
use gepeto::sampling::{self, SamplingConfig, Technique};
use gepeto_mapred::counters::builtin;
use gepeto_mapred::{run_with_recovery_io, ChaosPlan, IoFaultPlan, RetryPolicy, SimParams};
use gepeto_synth::SynthConfig;
use gepeto_telemetry::Recorder;
use proptest::prelude::*;

/// Bit-exact fingerprint of a dataset: float coordinates compared via
/// `to_bits`, so "equal" means equal down to the last mantissa bit.
fn bits(ds: &Dataset) -> Vec<(u32, i64, u64, u64, u32)> {
    ds.to_traces()
        .iter()
        .map(|t| {
            (
                t.user,
                t.timestamp.0,
                t.point.lat.to_bits(),
                t.point.lon.to_bits(),
                t.altitude.to_bits(),
            )
        })
        .collect()
}

fn synth_dfs(cluster: &Cluster, users: u64, seed: u64, chunk: usize) -> Dfs<MobilityTrace> {
    let mut dfs = gepeto::dfs_io::trace_dfs(cluster, chunk);
    SynthConfig::new(users)
        .seed(seed)
        .to_dfs(&mut dfs, "synth")
        .unwrap();
    dfs
}

fn counter(stats: &gepeto_mapred::JobStats, key: &str) -> u64 {
    stats.counters.get(key).copied().unwrap_or(0)
}

/// Runs the by-user regrouping shuffle over a synth workload under the
/// given memory budget and returns (output, stats).
fn regroup(
    users: u64,
    seed: u64,
    window: i64,
    budget: Option<usize>,
) -> (Dataset, gepeto_mapred::JobStats) {
    let cluster = Cluster::local(4, 2);
    let dfs = synth_dfs(&cluster, users, seed, 16 * 1024);
    let cfg = SamplingConfig::new(window, Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_by_user(&cluster, &dfs, "synth", &cfg, budget, &Recorder::disabled())
        .unwrap()
}

/// The by-user regrouping shuffle with a storage-fault plan injected
/// beneath the spill writer.
fn regroup_chaos(
    users: u64,
    seed: u64,
    window: i64,
    budget: Option<usize>,
    chaos: ChaosPlan,
) -> (Dataset, gepeto_mapred::JobStats) {
    let mut cluster = Cluster::local(4, 2).with_chaos(chaos);
    cluster.sim = SimParams::unit_time();
    let dfs = synth_dfs(&cluster, users, seed, 16 * 1024);
    let cfg = SamplingConfig::new(window, Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_by_user(&cluster, &dfs, "synth", &cfg, budget, &Recorder::disabled())
        .unwrap()
}

/// The acceptance property at a fixed scale where both paths fit in
/// memory: a 1-byte budget forces every partition out of core, and the
/// merged output is bit-identical to the unbudgeted run.
#[test]
fn spilled_shuffle_output_is_bit_identical_to_in_memory() {
    let (in_mem, clean_stats) = regroup(40, 7, 60, None);
    let (spilled, spill_stats) = regroup(40, 7, 60, Some(1));

    assert_eq!(counter(&clean_stats, builtin::SPILL_FILES), 0);
    assert!(counter(&spill_stats, builtin::SPILL_FILES) > 0, "no spill");
    assert!(counter(&spill_stats, builtin::SPILLED_BYTES) > 0);
    assert!(
        counter(&spill_stats, builtin::SPILLED_GROUPS) > 0,
        "a 1-byte budget must also overflow reduce groups"
    );
    assert_eq!(
        bits(&in_mem),
        bits(&spilled),
        "spill/merge changed output bits"
    );
    assert!(in_mem.num_traces() > 0, "vacuous comparison");
}

/// k-means under a starvation budget: every iteration's partial-sum
/// shuffle spills, and the centroids still land on identical bits.
#[test]
fn kmeans_under_budget_matches_in_memory_centroids() {
    let cluster = Cluster::local(4, 2);
    let dfs = synth_dfs(&cluster, 30, 3, 16 * 1024);
    let base = kmeans::KMeansConfig {
        k: 4,
        max_iterations: 4,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    let starved = kmeans::KMeansConfig {
        memory_budget: Some(1),
        ..base.clone()
    };
    let clean = kmeans::mapreduce_kmeans(&cluster, &dfs, "synth", &base).unwrap();
    let spilled = kmeans::mapreduce_kmeans(&cluster, &dfs, "synth", &starved).unwrap();

    let spill_files: u64 = spilled
        .per_iteration
        .iter()
        .map(|it| counter(&it.job, builtin::SPILL_FILES))
        .sum();
    assert!(spill_files > 0, "budgeted k-means never spilled");
    assert_eq!(clean.iterations, spilled.iterations);
    let centroid_bits = |r: &kmeans::KMeansResult| -> Vec<(u64, u64)> {
        r.centroids
            .iter()
            .map(|c| (c.lat.to_bits(), c.lon.to_bits()))
            .collect()
    };
    assert_eq!(centroid_bits(&clean), centroid_bits(&spilled));
}

/// Chaos: a datanode dies while the shuffle is spilling. The re-executed
/// attempts rebuild their runs from scratch and the merged output is
/// still bit-identical to the undisturbed spilling run.
#[test]
fn crash_mid_spill_recovers_bit_identically() {
    let run = |chaos: ChaosPlan| {
        let mut cluster = Cluster::local(3, 2).with_chaos(chaos);
        cluster.sim = SimParams::unit_time();
        let dfs = synth_dfs(&cluster, 120, 11, 4 * 1024);
        let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
        sampling::mapreduce_sample_by_user(
            &cluster,
            &dfs,
            "synth",
            &cfg,
            Some(64),
            &Recorder::disabled(),
        )
        .unwrap()
    };
    let (clean, clean_stats) = run(ChaosPlan::none());
    let (chaotic, chaotic_stats) = run(ChaosPlan::none().crash_node(0, 1.5));

    assert!(counter(&clean_stats, builtin::SPILL_FILES) > 0);
    assert!(counter(&chaotic_stats, builtin::SPILL_FILES) > 0);
    assert!(
        chaotic_stats.retries + chaotic_stats.reexecuted_maps + chaotic_stats.failed_over_reads > 0,
        "the crash was a no-op; move it earlier"
    );
    assert_eq!(
        bits(&clean),
        bits(&chaotic),
        "crash-mid-spill recovery changed output bits"
    );
}

/// Storage chaos: transient EIOs, torn writes, and bit-rot all firing
/// under a starvation budget. The commit/verify/quarantine machinery
/// must absorb every fault — the counters prove faults actually fired,
/// and the merged output is still bit-identical to the calm spill run.
#[test]
fn spill_under_io_faults_is_bit_identical_and_counts_repairs() {
    let (calm, _) = regroup(40, 7, 60, Some(1));
    let plan = IoFaultPlan::new(13).eio(0.3).torn(0.4).bitrot(0.25);
    let (faulted, stats) = regroup_chaos(40, 7, 60, Some(1), ChaosPlan::none().io_faults(plan));

    let repairs = counter(&stats, builtin::IO_RETRIES)
        + counter(&stats, builtin::TORN_WRITES)
        + counter(&stats, builtin::RUNS_QUARANTINED);
    assert!(
        repairs > 0,
        "fault plan was a no-op; raise the probabilities"
    );
    assert_eq!(
        bits(&calm),
        bits(&faulted),
        "storage faults changed output bits"
    );
}

/// ENOSPC degradation: a virtual disk too small for the starved run's
/// spill footprint fails the job with `DiskFull`; the storage-aware
/// recovery loop re-runs it with a grown memory budget that no longer
/// needs the disk, and the output matches the unconstrained run's bits.
#[test]
fn enospc_recovers_by_growing_the_memory_budget() {
    let (unconstrained, _) = regroup(20, 5, 60, None);

    let chaos = ChaosPlan::none().io_faults(IoFaultPlan::new(1).disk_capacity(512));
    let mut cluster = Cluster::local(4, 2).with_chaos(chaos);
    cluster.sim = SimParams::unit_time();
    let mut dfs = synth_dfs(&cluster, 20, 5, 16 * 1024);
    let cfg = SamplingConfig::new(60, Technique::ClosestToUpperLimit);
    let policy = RetryPolicy::none()
        .io_retries(3)
        .enospc_factor((64 * 1024 * 1024) as f64);
    let ((sampled, _), resubmissions) = run_with_recovery_io(
        "sampling-by-user",
        &cluster,
        &mut dfs,
        &policy,
        &Recorder::disabled(),
        |_, dfs, advice| {
            // 1 byte forces every partition out of core; after one
            // ENOSPC the advised budget is large enough to spill nothing.
            let budget = advice.scaled_budget(&policy, Some(1));
            sampling::mapreduce_sample_by_user(
                &cluster,
                dfs,
                "synth",
                &cfg,
                budget,
                &Recorder::disabled(),
            )
        },
    )
    .unwrap();
    assert!(resubmissions >= 1, "the 512-byte disk never filled up");
    assert_eq!(bits(&unconstrained), bits(&sampled));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The equivalence holds for arbitrary workload seeds, user counts,
    /// sampling windows and budget sizes — budgets in 1..4096 land
    /// anywhere between "everything spills" and "nothing spills".
    #[test]
    fn spill_equivalence_holds_for_arbitrary_workloads(
        users in 1u64..12,
        seed in any::<u64>(),
        window in 1i64..10_000,
        budget in 1usize..4096,
    ) {
        let (in_mem, _) = regroup(users, seed, window, None);
        let (spilled, _) = regroup(users, seed, window, Some(budget));
        prop_assert_eq!(bits(&in_mem), bits(&spilled));
    }

    /// Bit-identity also holds under arbitrary storage-fault plans:
    /// whatever mix of transient EIOs, torn writes, and bit-rot a seed
    /// produces, repaired spill runs merge to the same bytes.
    #[test]
    fn spill_equivalence_survives_arbitrary_io_faults(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        eio in 0.0f64..0.5,
        torn in 0.0f64..0.6,
        bitrot in 0.0f64..0.4,
    ) {
        let (calm, _) = regroup(8, seed, 60, Some(1));
        let plan = IoFaultPlan::new(fault_seed).eio(eio).torn(torn).bitrot(bitrot);
        let (faulted, _) = regroup_chaos(8, seed, 60, Some(1), ChaosPlan::none().io_faults(plan));
        prop_assert_eq!(bits(&calm), bits(&faulted));
    }
}
