//! Thread-count invariance contract, exercised against the real
//! `gepeto` binary: `--threads 1` (fully inline, the sequential
//! reference) and `--threads N` (work-stealing pool) must produce
//! byte-identical committed `OUTPUT` artifacts for every workload —
//! including runs forced onto the out-of-core spill path by a 1-byte
//! memory budget and runs recovering from an injected node crash.
//! Parallelism here is an execution detail; results are pinned to the
//! sequential semantics bit for bit.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const GEPETO: &str = env!("CARGO_BIN_EXE_gepeto");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gepeto-threads-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(argv: &[&str]) -> Output {
    Command::new(GEPETO)
        .args(argv)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn gepeto")
}

/// Reads a run's committed `OUTPUT` payload, verifying the checksum
/// footer on the way.
fn output_payload(run_dir: &Path) -> Vec<u8> {
    gepeto_mapred::commit::read_committed(&run_dir.join("OUTPUT"))
        .unwrap_or_else(|e| panic!("{}: OUTPUT failed verification: {e}", run_dir.display()))
}

/// Runs `argv ++ [--run-dir DIR --threads N]` once per thread count and
/// returns each run's committed OUTPUT bytes.
fn outputs_at_thread_counts(tag: &str, argv: &[&str], counts: &[&str]) -> Vec<Vec<u8>> {
    counts
        .iter()
        .map(|threads| {
            let dir = scratch(&format!("{tag}-t{threads}"));
            let dir_s = dir.display().to_string();
            let mut full: Vec<&str> = argv.to_vec();
            full.extend_from_slice(&["--run-dir", &dir_s, "--threads", threads]);
            let out = run(&full);
            assert!(
                out.status.success(),
                "{tag} --threads {threads} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let payload = output_payload(&dir);
            let _ = std::fs::remove_dir_all(&dir);
            payload
        })
        .collect()
}

#[test]
fn sample_output_is_byte_identical_across_thread_counts() {
    let outs = outputs_at_thread_counts(
        "sample",
        &[
            "sample", "--users", "6", "--scale", "0.004", "--window", "60",
        ],
        &["1", "4"],
    );
    assert_eq!(
        outs[0], outs[1],
        "sample OUTPUT diverged across thread counts"
    );
}

#[test]
fn kmeans_output_is_byte_identical_across_thread_counts() {
    // Centroid bit patterns are in the OUTPUT digest: any reassociation
    // of the parallel sums would flip low-order mantissa bits and fail.
    let outs = outputs_at_thread_counts(
        "kmeans",
        &[
            "kmeans",
            "--users",
            "8",
            "--scale",
            "0.006",
            "--k",
            "4",
            "--max-iter",
            "6",
        ],
        &["1", "4"],
    );
    assert_eq!(
        outs[0], outs[1],
        "kmeans OUTPUT diverged across thread counts"
    );
}

#[test]
fn spilling_synth_run_is_thread_count_invariant() {
    // A 1-byte budget forces every partition through the external
    // spill/merge path; parallel per-partition merges must preserve the
    // earlier-run-wins order byte for byte.
    let outs = outputs_at_thread_counts(
        "synth-spill",
        &[
            "synth",
            "--users",
            "300",
            "--chunk-mb",
            "1",
            "--memory-budget",
            "1",
        ],
        &["1", "4"],
    );
    assert_eq!(
        outs[0], outs[1],
        "spilled synth OUTPUT diverged across thread counts"
    );
}

#[test]
fn crash_recovery_is_thread_count_invariant() {
    // An injected node crash re-executes map work on surviving nodes;
    // the recovered result must still match the sequential reference.
    let outs = outputs_at_thread_counts(
        "kmeans-crash",
        &[
            "kmeans",
            "--users",
            "8",
            "--scale",
            "0.006",
            "--k",
            "3",
            "--max-iter",
            "4",
            "--crash",
            "1@40",
        ],
        &["1", "4"],
    );
    assert_eq!(
        outs[0], outs[1],
        "crash-recovered OUTPUT diverged across thread counts"
    );
}

#[test]
fn djcluster_results_are_thread_count_invariant() {
    // djcluster has no durable OUTPUT artifact; pin the deterministic
    // result lines of stdout (cluster/noise counts, preprocessing
    // funnel) instead — timings vary, results must not.
    let result_lines = |threads: &str| -> Vec<String> {
        let out = run(&[
            "djcluster",
            "--users",
            "6",
            "--scale",
            "0.004",
            "--mr-rtree",
            "false",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "djcluster --threads {threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("DJ-Cluster:") || l.starts_with("preprocessing:"))
            .map(str::to_string)
            .collect()
    };
    let one = result_lines("1");
    let four = result_lines("4");
    assert!(!one.is_empty(), "expected result lines in stdout");
    assert_eq!(one, four, "djcluster results diverged across thread counts");
}
