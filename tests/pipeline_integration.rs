//! End-to-end integration: generator → DFS → the paper's full pipeline
//! (sampling → preprocessing → DJ-Cluster → POI attack), asserting the
//! structural facts the paper's tables rest on.

use gepeto::prelude::*;

fn small_dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 15,
        scale: 0.02,
        ..GeneratorConfig::paper()
    })
    .generate()
}

#[test]
fn table1_shape_sampling_reduces_monotonically() {
    // Table I: trace counts fall drastically with the sampling rate, and
    // longer windows keep fewer traces.
    let ds = small_dataset();
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 1 << 20);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &ds).unwrap();

    let mut counts = Vec::new();
    for window in [60i64, 300, 600] {
        let cfg = sampling::SamplingConfig::new(window, sampling::Technique::ClosestToUpperLimit);
        let (sampled, _) = sampling::mapreduce_sample(&cluster, &dfs, "geolife", &cfg).unwrap();
        counts.push(sampled.num_traces());
    }
    assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    // The 1-minute rate already cuts the dense logs by roughly 10×
    // (paper: 2,033,686 → 155,260 ≈ 13×).
    let ratio = ds.num_traces() as f64 / counts[0] as f64;
    assert!(
        (6.0..25.0).contains(&ratio),
        "1-min reduction ratio {ratio}"
    );
}

#[test]
fn table4_shape_preprocessing_reduces_in_both_steps() {
    // Table IV: the speed filter removes a large share (paper: ~44 % of
    // the 1-min data is moving), dedup a small one.
    let ds = small_dataset();
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 1 << 20);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &ds).unwrap();
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "geolife", "sampled", &scfg).unwrap();

    let cfg = djcluster::DjConfig::default();
    let pre =
        djcluster::mapreduce_preprocess(&cluster, &mut dfs, "sampled", "clean", &cfg).unwrap();
    assert!(pre.after_speed_filter < pre.input);
    assert!(pre.after_dedup <= pre.after_speed_filter);
    let kept = pre.after_speed_filter as f64 / pre.input as f64;
    assert!(
        (0.30..0.85).contains(&kept),
        "stationary share {kept} (paper: ~0.56)"
    );
    // Dedup is the small step (paper: 86,416 → 85,743, <5 %).
    let dedup_loss = 1.0 - pre.after_dedup as f64 / pre.after_speed_filter.max(1) as f64;
    assert!(dedup_loss < 0.15, "dedup removed {dedup_loss}");
    assert_eq!(pre.jobs.num_jobs(), 2, "two pipelined map-only jobs");
}

#[test]
fn poi_attack_recovers_planted_homes() {
    // The generator plants each user's home; the attack should find a POI
    // near it for most users.
    let ds = small_dataset();
    let cfg = djcluster::DjConfig::default();
    let pois = attacks::extract_pois_dataset(&ds, &cfg);
    let mut found = 0;
    for pois in pois.values() {
        if attacks::infer_home(pois).is_some() {
            found += 1;
        }
    }
    assert!(
        found * 10 >= ds.num_users() * 8,
        "home found for only {found}/{} users",
        ds.num_users()
    );
}

#[test]
fn kmeans_on_generated_data_converges() {
    let ds = small_dataset();
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 256 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &ds).unwrap();
    let cfg = kmeans::KMeansConfig {
        k: 11,
        convergence_delta: 1e-6,
        max_iterations: 60,
        ..kmeans::KMeansConfig::paper(gepeto_geo::DistanceMetric::SquaredEuclidean)
    };
    let result = kmeans::mapreduce_kmeans(&cluster, &dfs, "geolife", &cfg).unwrap();
    assert!(result.iterations > 1, "non-trivial iteration count");
    assert_eq!(result.centroids.len(), 11);
    // Every centroid is inside the city bounding box.
    for c in &result.centroids {
        assert!((39.0..41.0).contains(&c.lat) && (115.0..118.0).contains(&c.lon));
    }
}

#[test]
fn full_dj_pipeline_extracts_city_pois() {
    let ds = small_dataset();
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 512 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &ds).unwrap();
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    sampling::mapreduce_sample_to_dfs(&cluster, &mut dfs, "geolife", "sampled", &scfg).unwrap();

    let cfg = djcluster::DjConfig::default();
    let rcfg = gepeto::rtree_build::RTreeBuildConfig::default();
    let (clustering, pre, stats) =
        djcluster::mapreduce_djcluster_full(&cluster, &mut dfs, "sampled", &cfg, Some(&rcfg))
            .unwrap();
    assert!(pre.after_dedup > 0);
    assert!(!clustering.clusters.is_empty());
    for c in &clustering.clusters {
        assert!(c.len() >= cfg.min_pts);
    }
    assert!(stats.rtree_report.is_some());
    assert_eq!(stats.cluster_job.reduce_tasks, 1);
    // Conservation: clustered + noise = preprocessed input.
    let clustered: usize = clustering.clusters.iter().map(Vec::len).sum();
    assert_eq!(clustered + clustering.noise, pre.after_dedup);
}

#[test]
fn plt_round_trip_through_text() {
    // The generator's output survives PLT text serialization — the format
    // real GeoLife files use.
    let ds = SyntheticGeoLife::new(GeneratorConfig {
        users: 3,
        scale: 0.003,
        ..GeneratorConfig::paper()
    })
    .generate();
    for trail in ds.trails() {
        let text: String = trail
            .traces()
            .iter()
            .map(|t| gepeto_model::plt::format_line(t) + "\n")
            .collect();
        let (parsed, errors) = gepeto_model::plt::parse_file(trail.user, &text);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(parsed.len(), trail.len());
        for (a, b) in trail.traces().iter().zip(&parsed) {
            assert_eq!(a.timestamp, b.timestamp);
            assert!((a.point.lat - b.point.lat).abs() < 1e-6);
            assert!((a.point.lon - b.point.lon).abs() < 1e-6);
        }
    }
}
