//! Attack vs. defense: inference attacks succeed on raw data and are
//! degraded by sanitization — the privacy/utility trade-off measured
//! end-to-end on generated data.

use gepeto::attacks::{learn_mmc, mmc::deanonymize};
use gepeto::metrics;
use gepeto::prelude::*;
use gepeto::sanitize::{GaussianMask, MixZone, MixZones, Sanitizer, SpatialCloaking};
use std::collections::BTreeMap;

fn dataset(users: usize, scale: f64) -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users,
        scale,
        ..GeneratorConfig::paper()
    })
    .generate()
}

fn mean_poi_recall(reference: &Dataset, attacked_ds: &Dataset) -> f64 {
    let cfg = djcluster::DjConfig::default();
    let ref_pois = attacks::extract_pois_dataset(reference, &cfg);
    let att_pois = attacks::extract_pois_dataset(attacked_ds, &cfg);
    let empty = Vec::new();
    let (mut sum, mut n) = (0.0, 0usize);
    for (user, pois) in &ref_pois {
        if pois.is_empty() {
            continue;
        }
        sum += metrics::poi_recall(pois, att_pois.get(user).unwrap_or(&empty), 150.0);
        n += 1;
    }
    sum / n.max(1) as f64
}

#[test]
fn strong_noise_degrades_poi_recall_monotonically() {
    let ds = dataset(10, 0.012);
    let raw = mean_poi_recall(&ds, &ds);
    assert!(raw > 0.9, "attack on raw data should work: {raw}");
    let weak = mean_poi_recall(
        &ds,
        &GaussianMask {
            sigma_m: 10.0,
            seed: 2,
        }
        .apply(&ds),
    );
    let strong = mean_poi_recall(
        &ds,
        &GaussianMask {
            sigma_m: 500.0,
            seed: 2,
        }
        .apply(&ds),
    );
    assert!(weak >= strong, "weak {weak} strong {strong}");
    assert!(
        strong < 0.2,
        "500 m noise should starve the attack: {strong}"
    );
    // Utility price is visible and ordered.
    let d_weak = metrics::mean_displacement_m(
        &ds,
        &GaussianMask {
            sigma_m: 10.0,
            seed: 2,
        }
        .apply(&ds),
    );
    let d_strong = metrics::mean_displacement_m(
        &ds,
        &GaussianMask {
            sigma_m: 500.0,
            seed: 2,
        }
        .apply(&ds),
    );
    assert!(d_weak < d_strong);
}

#[test]
fn mmc_deanonymization_beats_chance_and_noise_hurts_it() {
    let ds = dataset(12, 0.03);
    let cfg = djcluster::DjConfig::default();

    let build = |data: &Dataset| {
        let mut gallery = BTreeMap::new();
        let mut targets = Vec::new();
        for trail in data.trails() {
            let traces = trail.traces().to_vec();
            if traces.len() < 300 {
                continue;
            }
            let mid = traces.len() / 2;
            let train = Trail::new(trail.user, traces[..mid].to_vec());
            let test = Trail::new(trail.user, traces[mid..].to_vec());
            if let (Some(g), Some(t)) = (learn_mmc(&train, &cfg), learn_mmc(&test, &cfg)) {
                gallery.insert(trail.user, g);
                targets.push((trail.user, t));
            }
        }
        (gallery, targets)
    };
    let accuracy = |gallery: &BTreeMap<_, _>, targets: &[(u32, _)]| {
        if targets.is_empty() {
            return 0.0;
        }
        targets
            .iter()
            .filter(|(truth, t)| deanonymize(gallery, t).first().map(|r| r.0) == Some(*truth))
            .count() as f64
            / targets.len() as f64
    };

    let (gallery, targets) = build(&ds);
    assert!(targets.len() >= 6, "need enough learnable users");
    let raw_acc = accuracy(&gallery, &targets);
    let chance = 1.0 / gallery.len() as f64;
    assert!(
        raw_acc > chance * 4.0,
        "raw accuracy {raw_acc} vs chance {chance}"
    );

    // Attack the *sanitized* second halves against the raw gallery.
    let noisy = GaussianMask {
        sigma_m: 800.0,
        seed: 3,
    }
    .apply(&ds);
    let (_, noisy_targets) = build(&noisy);
    let noisy_acc = accuracy(&gallery, &noisy_targets);
    assert!(
        noisy_acc <= raw_acc,
        "noise should not improve the attack: {noisy_acc} vs {raw_acc}"
    );
}

#[test]
fn linking_attack_and_mix_zone_defense() {
    // Two observation campaigns of the same population.
    let a = dataset(8, 0.015);
    let b = SyntheticGeoLife::new(GeneratorConfig {
        users: 8,
        scale: 0.015,
        seed: GeneratorConfig::paper().seed, // same people, same geography
        ..GeneratorConfig::paper()
    })
    .generate();
    let cfg = djcluster::DjConfig::default();
    let links = gepeto::attacks::link_datasets(&a, &b, &cfg);
    let raw_acc = gepeto::attacks::linking::linking_accuracy(&links);
    assert!(raw_acc > 0.7, "linking should mostly succeed: {raw_acc}");

    // Mix zones over the city fragment trails and strip zone traces;
    // pseudonym stride moves ids out of the ground-truth range entirely,
    // so accuracy under the same scorer collapses.
    let center = GeneratorConfig::paper().city_center;
    let zones = MixZones {
        zones: vec![MixZone {
            center,
            radius_m: 3_000.0,
        }],
    };
    let b_mixed = zones.apply(&b);
    let links_mixed = gepeto::attacks::link_datasets(&a, &b_mixed, &cfg);
    let mixed_acc = gepeto::attacks::linking::linking_accuracy(&links_mixed);
    assert!(mixed_acc < raw_acc, "{mixed_acc} vs {raw_acc}");
}

#[test]
fn cloaking_trades_retention_for_privacy() {
    let ds = dataset(10, 0.012);
    let cloaked = SpatialCloaking {
        cell_m: 400.0,
        k: 2,
    }
    .apply(&ds);
    let recall = mean_poi_recall(&ds, &cloaked);
    let retention = metrics::retention(&ds, &cloaked);
    assert!(recall < 0.5, "cloaking should hide most POIs: {recall}");
    assert!(retention < 1.0, "cloaking must suppress something");
}

#[test]
fn sanitizers_never_invent_traces_or_users() {
    let ds = dataset(6, 0.008);
    let sanitizers: Vec<Box<dyn Sanitizer>> = vec![
        Box::new(GaussianMask {
            sigma_m: 50.0,
            seed: 1,
        }),
        Box::new(SpatialCloaking {
            cell_m: 300.0,
            k: 2,
        }),
        Box::new(gepeto::sanitize::SpatialAggregation { cell_m: 200.0 }),
    ];
    for s in &sanitizers {
        let out = s.apply(&ds);
        assert!(out.num_traces() <= ds.num_traces(), "{}", s.name());
        assert!(out.num_users() <= ds.num_users(), "{}", s.name());
    }
}

#[test]
fn home_work_pairs_are_unique_quasi_identifiers() {
    // §II: the (home, work) pair characterizes individuals almost
    // uniquely — on the synthetic city at 500 m granularity, most users
    // are unique, i.e. pseudonyms alone do not anonymize.
    let ds = dataset(12, 0.015);
    let cfg = djcluster::DjConfig::default();
    let uniqueness = metrics::home_work_uniqueness(&ds, &cfg, 500.0);
    assert!(uniqueness > 0.7, "uniqueness {uniqueness}");
    // Coarsening the grid to city scale destroys the identifier.
    let coarse = metrics::home_work_uniqueness(&ds, &cfg, 50_000.0);
    assert!(coarse <= uniqueness, "coarse {coarse} vs fine {uniqueness}");
}

#[test]
fn social_links_emerge_only_from_co_location() {
    use gepeto::attacks::social::{discover_social_links, SocialConfig};
    use gepeto_model::{MobilityTrace, Timestamp};
    // Synthetic users are independent; verify no spurious links at strict
    // settings, then plant two companions and find exactly them.
    let ds = dataset(6, 0.008);
    let cfg = SocialConfig::default();
    let baseline = discover_social_links(&ds, &cfg);
    // Then: two planted companions walking together for 30 minutes.
    let mut trails: Vec<Trail> = ds.trails().cloned().collect();
    for (user, off) in [(100u32, 0.0f64), (101, 1e-4)] {
        let traces: Vec<MobilityTrace> = (0..180)
            .map(|i| {
                MobilityTrace::new(
                    user,
                    GeoPoint::new(39.93 + i as f64 * 1e-5, 116.31 + off),
                    Timestamp(i * 10),
                )
            })
            .collect();
        trails.push(Trail::new(user, traces));
    }
    let with_companions = Dataset::from_trails(trails);
    let links = discover_social_links(&with_companions, &cfg);
    assert_eq!(links.len(), baseline.len() + 1, "{links:?}");
    assert!(links
        .iter()
        .any(|e| (e.a, e.b) == (100, 101) && e.contact_secs >= 1_200));
}

#[test]
fn semantic_labels_on_generated_users() {
    use gepeto::attacks::{semantic_trajectory, PoiLabel};
    let ds = dataset(8, 0.015);
    let cfg = djcluster::DjConfig::default();
    let mut with_home = 0;
    for trail in ds.trails() {
        let (labeled, traj) = semantic_trajectory(trail, &cfg);
        if labeled.iter().any(|(_, l)| *l == PoiLabel::Home) {
            with_home += 1;
            // The home label must carry actual dwell time.
            assert!(traj.time_at(PoiLabel::Home) > 0, "user {}", trail.user);
        }
    }
    assert!(with_home >= 6, "home labeled for only {with_home}/8 users");
}
