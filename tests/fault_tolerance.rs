//! Fault tolerance: the whole GEPETO pipeline under injected task
//! failures — results must match the failure-free runs exactly, with the
//! retries visible in the counters (the jobtracker's "monitoring tasks
//! and handling failures" role, §III).

use gepeto::prelude::*;
use gepeto_mapred::{FailurePlan, SimParams};

fn dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 6,
        scale: 0.006,
        ..GeneratorConfig::paper()
    })
    .generate()
}

fn clusters() -> (Cluster, Cluster) {
    let clean = Cluster::local(3, 2);
    let flaky = Cluster::local(3, 2).with_failures(FailurePlan {
        map_fail_prob: 0.3,
        reduce_fail_prob: 0.3,
        seed: 99,
        max_attempts: 200,
    });
    (clean, flaky)
}

#[test]
fn sampling_survives_failures_unchanged() {
    let ds = dataset();
    let (clean, flaky) = clusters();
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToMiddle);
    let run = |cluster: &Cluster| {
        let mut dfs = gepeto::dfs_io::trace_dfs(cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        sampling::mapreduce_sample(cluster, &dfs, "d", &cfg).unwrap()
    };
    let (a, _) = run(&clean);
    let (b, stats) = run(&flaky);
    assert_eq!(a, b);
    assert!(
        stats
            .counters
            .get("mapred.task.retries")
            .copied()
            .unwrap_or(0)
            > 0,
        "p=0.3 over many tasks must trigger retries"
    );
}

#[test]
fn kmeans_survives_failures_unchanged() {
    let ds = dataset();
    let (clean, flaky) = clusters();
    let cfg = kmeans::KMeansConfig {
        k: 5,
        convergence_delta: 1e-6,
        max_iterations: 15,
        ..kmeans::KMeansConfig::paper(gepeto_geo::DistanceMetric::SquaredEuclidean)
    };
    let run = |cluster: &Cluster| {
        let mut dfs = gepeto::dfs_io::trace_dfs(cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        kmeans::mapreduce_kmeans(cluster, &dfs, "d", &cfg).unwrap()
    };
    let a = run(&clean);
    let b = run(&flaky);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.converged, b.converged);
    for (x, y) in a.centroids.iter().zip(&b.centroids) {
        assert!((x.lat - y.lat).abs() < 1e-12 && (x.lon - y.lon).abs() < 1e-12);
    }
}

#[test]
fn djcluster_survives_failures_unchanged() {
    let ds = dataset();
    let (clean, flaky) = clusters();
    let cfg = djcluster::DjConfig::default();
    let run = |cluster: &Cluster| {
        let mut dfs = gepeto::dfs_io::trace_dfs(cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        let (clustering, pre, _) =
            djcluster::mapreduce_djcluster_full(cluster, &mut dfs, "d", &cfg, None).unwrap();
        (
            clustering.canonical_ids(),
            clustering.noise,
            pre.after_dedup,
        )
    };
    assert_eq!(run(&clean), run(&flaky));
}

#[test]
fn injected_failures_charge_virtual_time_and_move_the_makespan() {
    // Under unit-time sim parameters every attempt costs exactly 1
    // virtual second, so the makespan comparison is deterministic: the
    // flaky cluster must replay strictly slower because each failed
    // attempt charges a partial task body before the re-run.
    let ds = dataset();
    let mut clean = Cluster::local(3, 2);
    clean.sim = SimParams::unit_time();
    let flaky = clean.clone().with_failures(FailurePlan {
        map_fail_prob: 0.3,
        reduce_fail_prob: 0.3,
        seed: 99,
        max_attempts: 200,
    });
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToMiddle);
    let run = |cluster: &Cluster| {
        let mut dfs = gepeto::dfs_io::trace_dfs(cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        sampling::mapreduce_sample(cluster, &dfs, "d", &cfg).unwrap()
    };
    let (a, clean_stats) = run(&clean);
    let (b, flaky_stats) = run(&flaky);
    assert_eq!(a, b, "failures must never change the output");
    assert!(flaky_stats.retries > 0);
    assert_eq!(
        flaky_stats.retries,
        flaky_stats
            .counters
            .get("mapred.task.retries")
            .copied()
            .unwrap_or(0),
        "JobStats.retries must mirror the builtin counter"
    );
    assert!(
        flaky_stats.sim.failed_attempt_s > 0.0,
        "failed attempts must charge virtual runtime"
    );
    assert!(
        flaky_stats.sim.makespan_s > clean_stats.sim.makespan_s,
        "failures must move the makespan: flaky {} vs clean {}",
        flaky_stats.sim.makespan_s,
        clean_stats.sim.makespan_s
    );
}

#[test]
fn job_fails_cleanly_when_attempts_exhausted() {
    let ds = dataset();
    let doomed = Cluster::local(2, 2).with_failures(FailurePlan {
        map_fail_prob: 1.0,
        reduce_fail_prob: 0.0,
        seed: 1,
        max_attempts: 2,
    });
    let mut dfs = gepeto::dfs_io::trace_dfs(&doomed, 32 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let err = sampling::mapreduce_sample(&doomed, &dfs, "d", &cfg).unwrap_err();
    assert!(matches!(
        err,
        gepeto_mapred::JobError::TaskFailed { phase: "map", .. }
    ));
}
