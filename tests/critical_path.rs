//! Acceptance scenario for the trace-analysis layer: on a chaos run with
//! one node crash, the critical-path report must attribute the makespan
//! delta (vs. the clean run) to re-executed map work, and the node
//! timeline must show the crash and the recovery.

use gepeto::prelude::*;
use gepeto_mapred::{ChaosPlan, SimParams};
use gepeto_telemetry::Recorder;

fn dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 6,
        scale: 0.006,
        ..GeneratorConfig::paper()
    })
    .generate()
}

/// 3 nodes × 2 slots, unit-time sim: every attempt costs exactly 1
/// virtual second, so the crash deterministically lands mid-map.
fn unit_cluster(chaos: ChaosPlan) -> Cluster {
    let mut c = Cluster::local(3, 2).with_chaos(chaos);
    c.sim = SimParams::unit_time();
    c
}

fn run_sampling(chaos: ChaosPlan) -> (gepeto_mapred::JobStats, Recorder) {
    let ds = dataset();
    let cluster = unit_cluster(chaos);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 8 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToMiddle);
    let rec = Recorder::enabled();
    let (_, stats) = sampling::mapreduce_sample_with(&cluster, &dfs, "d", &cfg, &rec).unwrap();
    (stats, rec)
}

#[test]
fn crash_critical_path_attributes_makespan_delta_to_reexecuted_maps() {
    let (_, clean_rec) = run_sampling(ChaosPlan::none());
    // Node 1 dies 1.5 virtual seconds in: wave-1 maps it finished are
    // invalidated (their outputs died with it) and re-executed.
    let (chaos_stats, chaos_rec) = run_sampling(ChaosPlan::none().crash_node(1, 1.5));
    assert!(
        chaos_stats.reexecuted_maps > 0,
        "crash must cost re-executions"
    );

    let clean = clean_rec.virtual_critical_path().expect("clean vcp");
    let chaotic = chaos_rec.virtual_critical_path().expect("chaotic vcp");

    // The clean run has nothing to recover from.
    assert_eq!(clean.reexecuted_maps, 0);
    assert_eq!(clean.recovery_attempts, 0);
    assert!(clean.crashes.is_empty());

    // The chaos run's extra makespan is explained by recovery work: the
    // report must carry the re-executed maps, the killed/failed
    // attempts' virtual cost, and the crash itself.
    let delta = chaotic.makespan_s - clean.makespan_s;
    assert!(delta > 0.0, "recovery must cost virtual time");
    assert_eq!(
        chaotic.reexecuted_maps, chaos_stats.reexecuted_maps as usize,
        "report and JobStats must agree on re-executed maps"
    );
    assert!(
        chaotic.reexecuted_maps as f64 + chaotic.recovery_s > 0.0,
        "no recovery work attributed"
    );
    assert_eq!(chaotic.crashes, vec![(1, 1.5)]);

    // The rendered report says so in words.
    let text = chaotic.render();
    assert!(text.contains("re-executed maps"), "{text}");
    assert!(text.contains("node 1 crashed @ 1.500 s"), "{text}");

    // And the map phase is where the time went (sampling is map-only).
    let map = chaotic
        .phases
        .iter()
        .find(|p| p.phase == "map")
        .expect("map phase on the critical path");
    assert!(map.share > 0.9, "map-only job: share = {}", map.share);
}

#[test]
fn crash_timeline_shows_reexecution_and_the_dead_node() {
    let (_, rec) = run_sampling(ChaosPlan::none().crash_node(1, 1.5));
    let timeline = rec.timeline().expect("timeline");
    let text = timeline.render();
    // The dead node's lane carries the crash marker and downtime; some
    // lane carries a re-executed map ('m').
    assert!(text.contains("crashed @ 1.500 s"), "{text}");
    assert!(text.contains('!'), "crash instant marker missing:\n{text}");
    assert!(text.contains('-'), "downtime region missing:\n{text}");
    assert!(text.contains('m'), "re-executed map glyph missing:\n{text}");
    assert!(text.contains('M'), "successful map glyph missing:\n{text}");
}

#[test]
fn host_critical_path_descends_driver_to_task() {
    let (_, rec) = run_sampling(ChaosPlan::none());
    let cp = rec.critical_path();
    assert!(cp.total_us > 0);
    let names: Vec<&str> = cp.steps.iter().map(|s| s.name).collect();
    assert_eq!(names.first(), Some(&"sampling"), "{names:?}");
    assert!(
        names.contains(&"job"),
        "driver -> job chain broken: {names:?}"
    );
    // Depths increase strictly along the chain.
    for (i, step) in cp.steps.iter().enumerate() {
        assert_eq!(step.depth, i);
    }
    // Self times telescope back to the total.
    let self_sum: u64 = cp.steps.iter().map(|s| s.self_us).sum();
    assert_eq!(self_sum, cp.total_us);
}
