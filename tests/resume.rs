//! Crash-safe resume contract, exercised against the real `gepeto`
//! binary with a real `SIGKILL` — not a simulated fault. A durable run
//! is killed mid-flight (after its journal shows committed progress but
//! long before completion), resumed with `gepeto resume <run-dir>`, and
//! the committed `OUTPUT` artifact must be byte-identical to an
//! undisturbed run's. Exit-code contracts ride along: `3` for a job
//! that chaos killed for good, `0` for a no-op resume of a complete run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const GEPETO: &str = env!("CARGO_BIN_EXE_gepeto");

/// Reads a run's committed `OUTPUT` payload, verifying the checksum
/// footer on the way (so a torn/rotten artifact fails the test here).
fn output_payload(run_dir: &Path) -> Vec<u8> {
    gepeto_mapred::commit::read_committed(&run_dir.join("OUTPUT"))
        .unwrap_or_else(|e| panic!("{}: OUTPUT failed verification: {e}", run_dir.display()))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gepeto-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A k-means run that cannot finish quickly: `--delta 0` never
/// converges, so it always executes all 40 iterations (each one a
/// checkpointed MapReduce job), and the 1-byte memory budget keeps
/// every iteration's shuffle on the spill path.
fn kmeans_argv(run_dir: &Path) -> Vec<String> {
    [
        "kmeans",
        "--users",
        "20",
        "--scale",
        "0.01",
        "--k",
        "5",
        "--max-iter",
        "40",
        "--delta",
        "0",
        "--memory-budget",
        "1",
        "--run-dir",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([run_dir.display().to_string()])
    .collect()
}

fn run(argv: &[String]) -> Output {
    Command::new(GEPETO)
        .args(argv)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn gepeto")
}

fn spawn(argv: &[String]) -> Child {
    Command::new(GEPETO)
        .args(argv)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gepeto")
}

/// Polls the run journal until it holds at least `n` lines of `kind`.
fn wait_for_entries(run_dir: &Path, kind: &str, n: usize, deadline: Duration) -> bool {
    let journal = run_dir.join("journal.log");
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        let count = std::fs::read_to_string(&journal)
            .unwrap_or_default()
            .lines()
            .filter(|l| l.split(' ').nth(1) == Some(kind))
            .count();
        if count >= n {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

fn journal_count(run_dir: &Path, kind: &str) -> usize {
    std::fs::read_to_string(run_dir.join("journal.log"))
        .unwrap_or_default()
        .lines()
        .filter(|l| l.split(' ').nth(1) == Some(kind))
        .count()
}

#[test]
fn sigkilled_run_resumes_bit_identically() {
    // Reference: the same durable run, never disturbed.
    let clean_dir = scratch("clean");
    let clean = run(&kmeans_argv(&clean_dir));
    assert!(
        clean.status.success(),
        "clean run failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let clean_output = output_payload(&clean_dir);

    // Victim: identical run, SIGKILLed once the journal proves real
    // progress (two finished iterations) — far from the 40th iteration.
    let kill_dir = scratch("killed");
    let mut victim = spawn(&kmeans_argv(&kill_dir));
    assert!(
        wait_for_entries(&kill_dir, "checkpoint", 2, Duration::from_secs(60)),
        "victim made no journaled progress to kill"
    );
    victim.kill().expect("SIGKILL victim");
    let status = victim.wait().expect("reap victim");
    assert!(!status.success(), "victim survived the kill");
    assert!(
        !kill_dir.join("OUTPUT").exists(),
        "victim finished before the kill; raise --max-iter"
    );
    let checkpoints_at_kill = journal_count(&kill_dir, "checkpoint");

    // Resume finishes the run from the journal.
    let resume = run(&["resume".to_string(), kill_dir.display().to_string()]);
    assert!(
        resume.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resume.stderr)
    );
    let resumed_output = output_payload(&kill_dir);
    assert_eq!(
        clean_output, resumed_output,
        "resumed OUTPUT differs from the undisturbed run's"
    );
    // The resume actually reused journaled progress instead of starting
    // over: checkpoints only accumulate, and the finished run holds
    // exactly the 40 per-iteration checkpoints plus what the killed
    // attempt had already banked would be re-made — so strictly fewer
    // than 40 new ones were appended.
    let checkpoints_after = journal_count(&kill_dir, "checkpoint");
    assert!(
        checkpoints_after < 40 + checkpoints_at_kill,
        "resume re-ran every iteration: {checkpoints_at_kill} -> {checkpoints_after}"
    );
    assert_eq!(journal_count(&kill_dir, "complete"), 1);

    // Resuming a complete run is a no-op that leaves OUTPUT untouched.
    let again = run(&["resume".to_string(), kill_dir.display().to_string()]);
    assert!(again.status.success());
    assert!(String::from_utf8_lossy(&again.stdout).contains("already complete"));
    assert_eq!(output_payload(&kill_dir), clean_output);

    let _ = std::fs::remove_dir_all(clean_dir);
    let _ = std::fs::remove_dir_all(kill_dir);
}

#[test]
fn durable_sample_commits_manifest_journal_and_output() {
    let dir = scratch("sample");
    let argv: Vec<String> = [
        "sample",
        "--users",
        "3",
        "--scale",
        "0.003",
        "--memory-budget",
        "1",
        "--run-dir",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([dir.display().to_string()])
    .collect();
    let out = run(&argv);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("MANIFEST").exists());
    assert!(dir.join("journal.log").exists());
    let output = String::from_utf8(output_payload(&dir)).unwrap();
    assert!(output.starts_with("command: sample"), "{output}");
    assert!(output.contains("fnv64:"), "{output}");
    assert!(journal_count(&dir, "reduce") > 0, "no reduce commits");
    assert_eq!(journal_count(&dir, "complete"), 1);
    // The per-run spill root was swept on completion.
    let spill_entries = std::fs::read_dir(dir.join("spill")).unwrap().count();
    assert_eq!(spill_entries, 0, "stale spill runs left behind");

    // A second identical run in a fresh dir commits identical bytes —
    // the digest is deterministic, not timestamped.
    let dir2 = scratch("sample2");
    let argv2: Vec<String> = argv[..argv.len() - 1]
        .iter()
        .cloned()
        .chain([dir2.display().to_string()])
        .collect();
    assert!(run(&argv2).status.success());
    assert_eq!(output_payload(&dir), output_payload(&dir2));
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(dir2);
}

#[test]
fn chaos_exhausted_job_exits_with_the_job_failure_code() {
    // Every node dead at t=0: the job can never finish; the driver must
    // report it as a *job* failure (exit 3), not a usage error (1).
    let out = run(&[
        "kmeans",
        "--users",
        "2",
        "--scale",
        "0.002",
        "--k",
        "2",
        "--max-iter",
        "2",
        "--crash",
        "0@0,1@0,2@0,3@0",
    ]
    .iter()
    .map(ToString::to_string)
    .collect::<Vec<_>>());
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("job failed"));

    // A plain usage error keeps the generic failure code.
    let usage = run(&[
        "kmeans".to_string(),
        "--users".to_string(),
        "abc".to_string(),
    ]);
    assert_eq!(usage.status.code(), Some(1), "{usage:?}");
}

#[test]
fn io_chaos_run_is_bit_identical_and_surfaces_counters() {
    // The same durable workload with and without injected storage
    // faults: retries/rebuilds must be invisible in the committed bytes.
    let calm_dir = scratch("calm");
    let mut calm_argv = kmeans_argv(&calm_dir);
    calm_argv[8] = "4".to_string(); // --max-iter 4: keep it short
    let calm = run(&calm_argv);
    assert!(calm.status.success());

    let chaos_dir = scratch("chaos");
    let mut chaos_argv = kmeans_argv(&chaos_dir);
    chaos_argv[8] = "4".to_string();
    chaos_argv.extend([
        "--io-faults".to_string(),
        "eio=0.3,torn=0.4,bitrot=0.2,seed=11".to_string(),
        "--summary".to_string(),
    ]);
    let chaotic = run(&chaos_argv);
    assert!(
        chaotic.status.success(),
        "{}",
        String::from_utf8_lossy(&chaotic.stderr)
    );
    assert_eq!(
        output_payload(&calm_dir),
        output_payload(&chaos_dir),
        "storage faults changed committed output bits"
    );
    let stdout = String::from_utf8_lossy(&chaotic.stdout);
    let stderr = String::from_utf8_lossy(&chaotic.stderr);
    assert!(
        stdout.contains("durability:") || stderr.contains("io retries"),
        "no durability counters surfaced:\n{stdout}\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(calm_dir);
    let _ = std::fs::remove_dir_all(chaos_dir);
}
