//! Chaos harness integration: whole-pipeline behavior under scripted
//! node crashes, replica corruption and degradation. The engine contract
//! under test: a survivable failure never changes any output bit (host
//! results are computed independently of the virtual schedule), it only
//! moves the virtual makespan and the recovery statistics; an
//! unsurvivable failure surfaces as a typed error, never a panic or a
//! silent wrong answer.

use gepeto::prelude::*;
use gepeto_mapred::counters::builtin;
use gepeto_mapred::{
    ChaosPlan, Dfs, DfsError, Emitter, FailurePlan, FnMapper, JobError, MapOnlyJob, RetryPolicy,
    SimParams,
};
use gepeto_telemetry::Recorder;

fn dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 6,
        scale: 0.006,
        ..GeneratorConfig::paper()
    })
    .generate()
}

/// 3 nodes × 2 slots with unit-time sim parameters: every attempt costs
/// exactly 1 virtual second, so scripted crash times deterministically
/// land on the same task attempts in every run.
fn unit_cluster(chaos: ChaosPlan) -> Cluster {
    let mut c = Cluster::local(3, 2).with_chaos(chaos);
    c.sim = SimParams::unit_time();
    c
}

fn centroid_bits(centroids: &[GeoPoint]) -> Vec<(u64, u64)> {
    centroids
        .iter()
        .map(|p| (p.lat.to_bits(), p.lon.to_bits()))
        .collect()
}

/// The acceptance scenario: a datanode crashes mid-run under an
/// iterative driver. The job must finish, the centroids must be
/// *bit-identical* to the no-chaos run, and the recovery work (map
/// re-execution, replica failover) must be visible in the stats.
#[test]
fn kmeans_survives_a_datanode_crash_bit_identically() {
    let ds = dataset();
    let cfg = kmeans::KMeansConfig {
        k: 5,
        convergence_delta: 1e-6,
        max_iterations: 15,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    let run = |chaos: ChaosPlan| {
        let cluster = unit_cluster(chaos);
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 8 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        kmeans::mapreduce_kmeans(&cluster, &dfs, "d", &cfg).unwrap()
    };
    let clean = run(ChaosPlan::none());
    // Node 0 dies 1.5 virtual seconds into the first iteration's map
    // phase: its completed wave-1 maps are invalidated, its in-flight
    // attempts are killed, and its chunk replicas go dark for the rest
    // of the run.
    let chaotic = run(ChaosPlan::none().crash_node(0, 1.5));

    assert_eq!(clean.iterations, chaotic.iterations);
    assert_eq!(clean.converged, chaotic.converged);
    assert_eq!(
        centroid_bits(&clean.centroids),
        centroid_bits(&chaotic.centroids),
        "a survivable crash must not change a single output bit"
    );
    let total = |r: &kmeans::KMeansResult, f: fn(&gepeto_mapred::JobStats) -> u64| -> u64 {
        r.per_iteration.iter().map(|it| f(&it.job)).sum()
    };
    assert!(
        total(&chaotic, |j| j.reexecuted_maps) > 0,
        "no re-executions"
    );
    assert!(total(&chaotic, |j| j.failed_over_reads) > 0, "no failovers");
    assert_eq!(total(&clean, |j| j.reexecuted_maps), 0);
    assert_eq!(total(&clean, |j| j.failed_over_reads), 0);
    let makespan = |r: &kmeans::KMeansResult| -> f64 {
        r.per_iteration.iter().map(|it| it.job.sim.makespan_s).sum()
    };
    assert!(
        makespan(&chaotic) > makespan(&clean),
        "recovery work must cost virtual time: {} vs {}",
        makespan(&chaotic),
        makespan(&clean)
    );
}

#[test]
fn single_job_crash_recovery_shows_up_in_stats_and_counters() {
    let ds = dataset();
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToMiddle);
    let run = |chaos: ChaosPlan| {
        let cluster = unit_cluster(chaos);
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 8 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        sampling::mapreduce_sample(&cluster, &dfs, "d", &cfg).unwrap()
    };
    let (clean, _) = run(ChaosPlan::none());
    let (survived, stats) = run(ChaosPlan::none().crash_node(1, 1.5));
    assert_eq!(clean, survived);
    assert!(stats.reexecuted_maps > 0);
    assert!(stats.failed_over_reads > 0);
    // JobStats fields mirror the builtin counters.
    assert_eq!(
        stats.counters.get(builtin::REEXECUTED_MAPS).copied(),
        Some(stats.reexecuted_maps)
    );
    assert_eq!(
        stats.counters.get(builtin::FAILED_OVER_READS).copied(),
        Some(stats.failed_over_reads)
    );
}

#[test]
fn corrupt_replicas_force_failover_never_a_wrong_answer() {
    let cluster_base = Cluster::local(3, 2);
    let mut dfs = Dfs::new(cluster_base.topology.clone(), 64, 3);
    dfs.put_fixed("r", (0..200u64).collect(), 8).unwrap();
    // Corrupt the primary replica of every chunk.
    let mut chaos = ChaosPlan::none();
    for &id in dfs.blocks_of("r").unwrap() {
        chaos = chaos.corrupt_replica(id, dfs.block(id).replicas[0]);
    }
    let doubler = || {
        FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(off, v * 2);
        })
    };
    let mut cluster = cluster_base.clone().with_chaos(chaos);
    cluster.sim = SimParams::unit_time();
    let corrupt = MapOnlyJob::new("double", &cluster, &dfs, "r", doubler())
        .run()
        .unwrap();
    let clean = MapOnlyJob::new("double", &cluster_base, &dfs, "r", doubler())
        .run()
        .unwrap();
    assert_eq!(clean.output, corrupt.output);
    assert!(corrupt.stats.failed_over_reads > 0);
    assert_eq!(corrupt.stats.reexecuted_maps, 0, "nothing crashed");
}

#[test]
fn all_replicas_lost_is_a_typed_error_not_a_panic() {
    let base = Cluster::local(4, 2);
    let mut dfs = Dfs::new(base.topology.clone(), 64, 2);
    dfs.put_fixed("r", (0..100u64).collect(), 8).unwrap();
    // Crash both replica holders of the first chunk before the job.
    let victim = dfs.blocks_of("r").unwrap()[0];
    let mut chaos = ChaosPlan::none();
    for &n in &dfs.block(victim).replicas {
        chaos = chaos.crash_node(n, 0.0);
    }
    let mut cluster = base.with_chaos(chaos);
    cluster.sim = SimParams::unit_time();
    let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
        out.emit(off, *v);
    });
    let err = MapOnlyJob::new("id", &cluster, &dfs, "r", mapper)
        .run()
        .unwrap_err();
    assert_eq!(err, JobError::Dfs(DfsError::AllReplicasLost(victim)));
}

#[test]
fn checkpointed_kmeans_retries_dead_jobs_and_matches_the_clean_run() {
    let ds = dataset();
    let cfg = kmeans::KMeansConfig {
        k: 4,
        convergence_delta: 1e-6,
        max_iterations: 10,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    let clean = {
        let cluster = unit_cluster(ChaosPlan::none());
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        kmeans::mapreduce_kmeans(&cluster, &dfs, "d", &cfg).unwrap()
    };
    // An aggressive failure plan with a tiny attempt budget kills whole
    // jobs; the checkpointed driver re-submits each dead iteration under
    // a fresh job name (re-rolling the per-attempt failure hashes) and
    // resumes from the last good centroids.
    let flaky = {
        // Seed chosen so attempt 0 of several iterations dies (27 map
        // tasks at p=0.4 with a 2-attempt budget kill most submissions)
        // while a re-submission under the re-rolled `.rN` name succeeds
        // within the retry budget — deterministic by construction.
        let cluster = unit_cluster(ChaosPlan::none()).with_failures(FailurePlan {
            map_fail_prob: 0.4,
            reduce_fail_prob: 0.0,
            seed: 18,
            max_attempts: 2,
        });
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
        kmeans::mapreduce_kmeans_checkpointed(
            &cluster,
            &mut dfs,
            "d",
            &cfg,
            &RetryPolicy::default().retries(50),
            &Recorder::disabled(),
        )
        .unwrap()
    };
    assert!(
        flaky.job_retries > 0,
        "p=0.35 with max_attempts=1 must kill at least one job"
    );
    assert_eq!(clean.iterations, flaky.iterations);
    assert_eq!(
        centroid_bits(&clean.centroids),
        centroid_bits(&flaky.centroids),
        "checkpoint-resume must reproduce the clean trajectory exactly"
    );
}

#[test]
fn makespan_overhead_grows_with_the_number_of_crashes() {
    // One record per chunk → exactly 48 unit-time map tasks; 4 nodes ×
    // 2 slots → 6 clean waves. Deterministic schedule, deterministic
    // overhead.
    let run = |chaos: ChaosPlan| {
        let mut cluster = Cluster::local(4, 2).with_chaos(chaos);
        cluster.sim = SimParams::unit_time();
        let mut dfs = Dfs::new(cluster.topology.clone(), 8, 3);
        dfs.put_fixed("r", (0..48u64).collect(), 8).unwrap();
        let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(off, *v);
        });
        let result = MapOnlyJob::new("id", &cluster, &dfs, "r", mapper)
            .run()
            .unwrap();
        (result.output, result.stats)
    };
    let (out0, s0) = run(ChaosPlan::none());
    let (out1, s1) = run(ChaosPlan::none().crash_node(0, 1.5));
    let (out2, s2) = run(ChaosPlan::none().crash_node(0, 1.5).crash_node(1, 2.5));
    assert_eq!(out0, out1);
    assert_eq!(out0, out2);
    assert!(
        s0.sim.makespan_s < s1.sim.makespan_s,
        "one crash: {} !< {}",
        s0.sim.makespan_s,
        s1.sim.makespan_s
    );
    assert!(
        s1.sim.makespan_s < s2.sim.makespan_s,
        "two crashes: {} !< {}",
        s1.sim.makespan_s,
        s2.sim.makespan_s
    );
    assert_eq!(s0.reexecuted_maps, 0);
    assert!(s1.reexecuted_maps > 0);
    assert!(s2.reexecuted_maps >= s1.reexecuted_maps);
}

#[test]
fn degraded_nodes_slow_the_replay_without_touching_output() {
    // Unit-time startup plus a real per-record cost so degradation (which
    // multiplies compute, not startup) is visible in the makespan.
    let mut params = SimParams::unit_time();
    params.per_record_us = 100_000.0; // 0.1 s per record
    let run = |chaos: ChaosPlan| {
        let mut cluster = Cluster::local(3, 2).with_chaos(chaos);
        cluster.sim = params;
        let mut dfs = Dfs::new(cluster.topology.clone(), 32, 3);
        dfs.put_fixed("r", (0..120u64).collect(), 8).unwrap();
        let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
            out.emit(off, v + 1);
        });
        let result = MapOnlyJob::new("inc", &cluster, &dfs, "r", mapper)
            .run()
            .unwrap();
        (result.output, result.stats.sim.makespan_s)
    };
    let (clean_out, clean_s) = run(ChaosPlan::none());
    let (slow_out, slow_s) = run(ChaosPlan::none().degrade_node(0, 0.0, 4.0));
    assert_eq!(clean_out, slow_out);
    assert!(
        slow_s > clean_s,
        "a 4x degraded node must stretch the makespan: {slow_s} vs {clean_s}"
    );
}

#[test]
fn rereplication_after_a_crash_protects_against_the_next_one() {
    // First crash: heal. Second crash of another original replica
    // holder: the healed copies keep every chunk readable.
    let base = Cluster::local(5, 2);
    let mut dfs = Dfs::new(base.topology.clone(), 64, 2);
    dfs.put_fixed("r", (0..200u64).collect(), 8).unwrap();
    let chaos = ChaosPlan::none().crash_node(0, 0.0);
    let report = dfs.rereplicate(&chaos);
    assert!(report.lost_blocks.is_empty());
    // Node 1 dies too; without healing, any chunk whose replicas were
    // exactly {0, 1} would now be lost.
    let both = chaos.crash_node(1, 0.0);
    let mut cluster = base.with_chaos(both);
    cluster.sim = SimParams::unit_time();
    let mapper = FnMapper::new(|off: u64, v: &u64, out: &mut Emitter<u64, u64>| {
        out.emit(off, *v);
    });
    let result = MapOnlyJob::new("id", &cluster, &dfs, "r", mapper)
        .run()
        .unwrap();
    assert_eq!(result.output.len(), 200);
}
