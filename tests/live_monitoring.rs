//! Live monitoring integration: the acceptance scenario for the
//! heartbeat/exposition/flamegraph layer. A chaos k-means run under a
//! monitored recorder must (a) expose the injected crash through the
//! live gauges, (b) keep the progress counters consistent (done never
//! exceeds total, everything drains on success), and (c) produce a
//! folded-stack export whose total self-time agrees with the
//! [`CriticalPath`] wall time to within 1%.

use gepeto::prelude::*;
use gepeto_mapred::{ChaosPlan, SimParams};
use gepeto_telemetry::Recorder;

fn dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 6,
        scale: 0.006,
        ..GeneratorConfig::paper()
    })
    .generate()
}

fn unit_cluster(chaos: ChaosPlan) -> Cluster {
    let mut c = Cluster::local(3, 2).with_chaos(chaos);
    c.sim = SimParams::unit_time();
    c
}

fn run_kmeans(chaos: ChaosPlan, rec: &Recorder) -> kmeans::KMeansResult {
    let ds = dataset();
    let cluster = unit_cluster(chaos);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 8 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
    let cfg = kmeans::KMeansConfig {
        k: 5,
        convergence_delta: 1e-6,
        max_iterations: 6,
        ..kmeans::KMeansConfig::paper(gepeto_geo::DistanceMetric::SquaredEuclidean)
    };
    kmeans::mapreduce_kmeans_with(&cluster, &dfs, "d", &cfg, rec).unwrap()
}

#[test]
fn crash_recovery_is_visible_in_the_live_gauges() {
    let rec = Recorder::monitored();
    let monitor = rec.monitor().expect("monitored recorder has a registry");
    let result = run_kmeans(ChaosPlan::none().crash_node(0, 1.5), &rec);
    assert!(result.iterations > 0);

    let snap = monitor.snapshot();
    // The injected node-0 crash forces map re-execution; the registry
    // must have seen it, not just the post-hoc JobStats.
    assert!(snap.reexecuted_maps > 0, "snapshot: {snap:?}");
    assert!(
        snap.crash_killed_attempts + snap.task_retries > 0,
        "snapshot: {snap:?}"
    );
    // All work drained: one job per iteration (plus none leaked).
    assert_eq!(snap.jobs_started, snap.jobs_finished);
    assert_eq!(snap.jobs_started, result.iterations as u64);
    assert_eq!(snap.map_tasks_done, snap.map_tasks_total);
    assert_eq!(snap.reduce_tasks_done, snap.reduce_tasks_total);
    assert!(snap.shuffle_bytes > 0);
    // The k-means driver published its convergence state.
    assert_eq!(snap.driver_iteration, result.iterations as u64);
    assert!(snap.driver_delta.is_finite());
    // Only surviving nodes kept accruing busy time; node 0 stopped at
    // the crash, so its busy time must be below the busiest survivor.
    assert_eq!(snap.node_busy_s.len(), 3);
    let max_busy = snap.node_busy_s.iter().cloned().fold(0.0, f64::max);
    assert!(snap.node_busy_s[0] < max_busy, "snapshot: {snap:?}");

    let line = snap.status_line();
    assert!(line.contains("reexec"), "{line}");
    assert!(line.contains("iter"), "{line}");
}

#[test]
fn progress_counters_never_run_ahead_of_their_totals() {
    let rec = Recorder::monitored();
    let monitor = rec.monitor().unwrap();
    // Interleave snapshots with work: totals are announced before
    // completions are counted, so done <= total at every observation.
    let before = monitor.snapshot();
    assert_eq!(before.map_tasks_done, 0);
    run_kmeans(ChaosPlan::none(), &rec);
    let after = monitor.snapshot();
    assert!(after.map_tasks_done >= before.map_tasks_done);
    assert!(after.map_tasks_done <= after.map_tasks_total);
    assert!(after.reduce_tasks_done <= after.reduce_tasks_total);
}

#[test]
fn memory_budget_accounting_bounds_the_shuffle_peak() {
    let ds = dataset();
    let cluster = unit_cluster(ChaosPlan::none());
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 8 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "d", &ds).unwrap();
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let run = |budget: Option<usize>, rec: &Recorder| {
        sampling::mapreduce_sample_by_user(&cluster, &dfs, "d", &scfg, budget, rec).unwrap()
    };

    // Unbudgeted, the whole by-user shuffle buffers in memory and the
    // accounted peak is the largest partition.
    let free_rec = Recorder::enabled();
    let (free_out, free_stats) = run(None, &free_rec);
    let free_peak = free_stats.counters[gepeto_telemetry::MEM_ACCOUNTED_PEAK_COUNTER];
    assert!(free_peak > 0);
    assert!(!free_stats
        .counters
        .contains_key(gepeto_telemetry::MEM_BUDGET_BYTES_COUNTER));

    // A budget well below that peak engages spilling, which keeps the
    // buffered watermark strictly under the unbudgeted one — the
    // unbudgeted run exceeds this budget by construction.
    let budget = (free_peak / 4).max(64) as usize;
    let rec = Recorder::enabled();
    let (out, stats) = run(Some(budget), &rec);
    let peak = stats.counters[gepeto_telemetry::MEM_ACCOUNTED_PEAK_COUNTER];
    assert_eq!(
        stats.counters[gepeto_telemetry::MEM_BUDGET_BYTES_COUNTER],
        budget as u64
    );
    assert!(
        peak < free_peak,
        "budgeted {peak} vs unbudgeted {free_peak}"
    );
    assert!(free_peak > budget as u64);
    // Overshoot (if any — trigger granularity is one map bucket) is
    // recorded as exactly peak - budget.
    let over = stats
        .counters
        .get(gepeto_telemetry::MEM_PEAK_OVER_BUDGET_COUNTER)
        .copied()
        .unwrap_or(0);
    assert_eq!(over, peak.saturating_sub(budget as u64));

    // Spilling changes memory, never results: outputs are identical.
    assert_eq!(free_out, out);

    // Both summaries carry the memory lines the flag surfaces.
    let budgeted_summary = rec.summary().render();
    assert!(
        budgeted_summary.contains("memory: budget"),
        "{budgeted_summary}"
    );
    assert!(
        budgeted_summary.contains("heap: peak"),
        "{budgeted_summary}"
    );
    let free_summary = free_rec.summary().render();
    assert!(
        free_summary.contains("memory: unbudgeted, accounted peak"),
        "{free_summary}"
    );
}

#[test]
fn folded_stacks_account_for_the_critical_path_wall_time() {
    let rec = Recorder::monitored();
    run_kmeans(ChaosPlan::none().crash_node(0, 1.5), &rec);

    let folded = rec.host_folded();
    let total_us: u64 = folded
        .lines()
        .map(|l| {
            l.rsplit_once(' ')
                .expect("folded line")
                .1
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    let cp = rec.critical_path();
    let diff = total_us.abs_diff(cp.total_us) as f64;
    assert!(
        diff <= cp.total_us as f64 * 0.01,
        "folded total {total_us} us vs critical path {} us",
        cp.total_us
    );
    // The hot frames of the run are in the export.
    assert!(folded.contains("kmeans"), "{folded}");

    // The virtual fold attributes the dominant job's scheduled
    // attempts per task and node. The crash leaves node 0 dead for the
    // later (dominant) iterations, so no frame may land on it.
    let virt = rec.virtual_folded().expect("virtual stacks");
    assert!(virt.contains(";map;"), "{virt}");
    assert!(virt.contains(";reduce;"), "{virt}");
    assert!(!virt.contains("@n0"), "{virt}");
}
