//! Integration: a small k-means job recorded end-to-end — the event
//! stream must read job-start → N iteration spans → job-end, and the
//! JSONL sink must hold one well-formed object per line.

use gepeto::prelude::*;
use gepeto_telemetry::{EventKind, Recorder};

fn tiny_dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 3,
        scale: 0.004,
        ..GeneratorConfig::paper()
    })
    .generate()
}

#[test]
fn kmeans_emits_ordered_spans_into_jsonl_sink() {
    let ds = tiny_dataset();
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 1 << 20);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &ds).unwrap();

    let cfg = kmeans::KMeansConfig {
        k: 3,
        max_iterations: 5,
        ..kmeans::KMeansConfig::paper(gepeto_geo::DistanceMetric::SquaredEuclidean)
    };
    let rec = Recorder::enabled();
    let result = kmeans::mapreduce_kmeans_with(&cluster, &dfs, "geolife", &cfg, &rec).unwrap();
    assert!(result.iterations >= 1);

    // Ordering: the kmeans run span opens first, every iteration span
    // starts and ends strictly inside it, and the run span closes last.
    let events = rec.events();
    let start_idx = events
        .iter()
        .position(|e| e.kind == EventKind::SpanStart && e.name == "kmeans")
        .expect("run span start");
    let end_idx = events
        .iter()
        .position(|e| e.kind == EventKind::SpanEnd && e.name == "kmeans")
        .expect("run span end");
    assert_eq!(start_idx, 0, "run span must open the stream");
    let run_id = events[start_idx].span_id;

    let iter_starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EventKind::SpanStart && e.name == "kmeans.iteration")
        .map(|(i, _)| i)
        .collect();
    let iter_ends: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EventKind::SpanEnd && e.name == "kmeans.iteration")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        iter_starts.len(),
        result.iterations,
        "one span per iteration"
    );
    assert_eq!(iter_ends.len(), result.iterations);
    for (&s, &e) in iter_starts.iter().zip(&iter_ends) {
        assert!(
            start_idx < s && s < e && e < end_idx,
            "iteration inside run"
        );
        assert_eq!(
            events[s].parent_id, run_id,
            "iteration is a child of the run"
        );
    }
    // Iteration labels count up from 1.
    for (i, &s) in iter_starts.iter().enumerate() {
        assert_eq!(events[s].label("iter"), Some((i + 1).to_string().as_str()));
    }
    // Every iteration carried a full MapReduce job underneath.
    let jobs = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == "job")
        .count();
    assert_eq!(jobs, result.iterations);
    // And one convergence-shift point per iteration.
    let shifts = events
        .iter()
        .filter(|e| e.kind == EventKind::Point && e.name == "kmeans.shift")
        .count();
    assert_eq!(shifts, result.iterations);

    // The JSONL sink: one object per line, braces balanced, every line
    // self-describing via its "kind" field.
    let mut sink: Vec<u8> = Vec::new();
    rec.write_jsonl(&mut sink).unwrap();
    let body = String::from_utf8(sink).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), events.len(), "one line per event");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
        assert!(line.contains("\"kind\":"), "bad line: {line}");
        assert!(line.contains("\"name\":"), "bad line: {line}");
    }
    assert!(lines[0].contains("\"name\":\"kmeans\""));
    assert!(lines.last().unwrap().contains("span_end"));

    // The summary built from the same stream sees the phases.
    let summary = rec.summary();
    assert!(summary.phases.iter().any(|p| p.name == "map"));
    assert!(summary.phases.iter().any(|p| p.name == "reduce"));
}
