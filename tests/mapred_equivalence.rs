//! MapReduce ≡ sequential: every MapReduced algorithm must compute what
//! its single-machine reference computes, on generator-produced data and
//! across chunk sizes.

use gepeto::prelude::*;
use gepeto_geo::DistanceMetric;

fn dataset() -> Dataset {
    SyntheticGeoLife::new(GeneratorConfig {
        users: 8,
        scale: 0.008,
        ..GeneratorConfig::paper()
    })
    .generate()
}

fn dfs_with_chunks(cluster: &Cluster, ds: &Dataset, chunk: usize) -> Dfs<MobilityTrace> {
    let mut dfs = gepeto::dfs_io::trace_dfs(cluster, chunk);
    gepeto::dfs_io::put_dataset(&mut dfs, "d", ds).unwrap();
    dfs
}

#[test]
fn sampling_equivalence_across_chunk_sizes() {
    let ds = dataset();
    let cluster = Cluster::local(4, 2);
    let cfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let seq = sampling::sequential_sample(&ds, &cfg);
    for &chunk in &[1usize << 22, 64 * 1024, 8 * 1024] {
        let dfs = dfs_with_chunks(&cluster, &ds, chunk);
        let chunks = dfs.num_blocks("d").unwrap();
        let (mr, _) = sampling::mapreduce_sample(&cluster, &dfs, "d", &cfg).unwrap();
        // Identical up to the per-chunk window-boundary artifact.
        let diff = mr.num_traces() as i64 - seq.num_traces() as i64;
        assert!(
            (0..chunks as i64).contains(&diff),
            "chunk={chunk}: diff {diff} vs {chunks} chunks"
        );
        if chunks == 1 {
            assert_eq!(mr, seq);
        }
    }
}

#[test]
fn kmeans_iteration_equivalence_both_metrics() {
    let ds = dataset();
    let points: Vec<GeoPoint> = ds.iter_traces().map(|t| t.point).collect();
    let cluster = Cluster::local(4, 2);
    let dfs = dfs_with_chunks(&cluster, &ds, 32 * 1024);
    for metric in [DistanceMetric::SquaredEuclidean, DistanceMetric::Haversine] {
        let cfg = kmeans::KMeansConfig {
            k: 7,
            ..kmeans::KMeansConfig::paper(metric)
        };
        let centroids = kmeans::initial_centroids(&points, cfg.k, 3);
        let (mr, _) = kmeans::mapreduce_iteration(&cluster, &dfs, "d", &centroids, &cfg).unwrap();
        let seq = kmeans::sequential_iteration(&points, &centroids, metric);
        for (a, b) in mr.iter().zip(&seq) {
            assert!(
                (a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9,
                "{metric:?}: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn kmeans_combiner_equivalence_on_generated_data() {
    let ds = dataset();
    let cluster = Cluster::local(4, 2);
    let dfs = dfs_with_chunks(&cluster, &ds, 16 * 1024);
    let points: Vec<GeoPoint> = ds.iter_traces().map(|t| t.point).collect();
    let centroids = kmeans::initial_centroids(&points, 9, 5);
    let base = kmeans::KMeansConfig {
        k: 9,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    let with = kmeans::KMeansConfig {
        use_combiner: true,
        ..base.clone()
    };
    let (a, sa) = kmeans::mapreduce_iteration(&cluster, &dfs, "d", &centroids, &base).unwrap();
    let (b, sb) = kmeans::mapreduce_iteration(&cluster, &dfs, "d", &centroids, &with).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x.lat - y.lat).abs() < 1e-9 && (x.lon - y.lon).abs() < 1e-9);
    }
    assert!(sb.sim.shuffle_bytes < sa.sim.shuffle_bytes);
}

#[test]
fn preprocessing_equivalence() {
    let ds = dataset();
    let cfg = djcluster::DjConfig::default();
    let seq = djcluster::sequential_preprocess(&ds, &cfg);
    let cluster = Cluster::local(4, 2);
    // One chunk: exact equality (chunk boundaries can differ at edges).
    let mut dfs = dfs_with_chunks(&cluster, &ds, 1 << 22);
    let stats = djcluster::mapreduce_preprocess(&cluster, &mut dfs, "d", "out", &cfg).unwrap();
    let out = gepeto::dfs_io::read_dataset(&dfs, "out").unwrap();
    assert_eq!(out, seq);
    assert_eq!(stats.after_dedup, seq.num_traces());
}

#[test]
fn djcluster_equivalence_regardless_of_rtree_construction() {
    let ds = dataset();
    let cfg = djcluster::DjConfig::default();
    let pre = djcluster::sequential_preprocess(&ds, &cfg);
    let cluster = Cluster::local(4, 2);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 16 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "pre", &pre).unwrap();

    let seq = djcluster::sequential_djcluster(&dfs.read("pre").unwrap(), &cfg);
    let (direct, _) = djcluster::mapreduce_djcluster(&cluster, &dfs, "pre", &cfg, None).unwrap();
    let rcfg = gepeto::rtree_build::RTreeBuildConfig {
        curve: gepeto_geo::SpaceFillingCurve::ZOrder,
        partitions: 5,
        ..gepeto::rtree_build::RTreeBuildConfig::default()
    };
    let (mr_tree, _) =
        djcluster::mapreduce_djcluster(&cluster, &dfs, "pre", &cfg, Some(&rcfg)).unwrap();

    assert_eq!(direct.canonical_ids(), seq.canonical_ids());
    assert_eq!(mr_tree.canonical_ids(), seq.canonical_ids());
    assert_eq!(direct.noise, seq.noise);
}

#[test]
fn rtree_build_equivalence_both_curves() {
    let ds = dataset();
    let cluster = Cluster::local(4, 2);
    let dfs = dfs_with_chunks(&cluster, &ds, 32 * 1024);
    let direct = gepeto::rtree_build::direct_build_rtree(&dfs, "d", 16).unwrap();
    for curve in [
        gepeto_geo::SpaceFillingCurve::ZOrder,
        gepeto_geo::SpaceFillingCurve::Hilbert,
    ] {
        let cfg = gepeto::rtree_build::RTreeBuildConfig {
            curve,
            partitions: 6,
            ..gepeto::rtree_build::RTreeBuildConfig::default()
        };
        let (tree, report) =
            gepeto::rtree_build::mapreduce_build_rtree(&cluster, &dfs, "d", &cfg).unwrap();
        assert_eq!(tree.len(), direct.len(), "{}", curve.name());
        let center = GeneratorConfig::paper().city_center;
        for radius in [100.0, 1_000.0, 10_000.0] {
            let mut a: Vec<u64> = tree
                .within_radius_m(center, radius)
                .iter()
                .map(|e| e.payload)
                .collect();
            let mut b: Vec<u64> = direct
                .within_radius_m(center, radius)
                .iter()
                .map(|e| e.payload)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{} radius {radius}", curve.name());
        }
        assert!(
            report.imbalance() < 3.0,
            "{}: {:?}",
            curve.name(),
            report.partition_sizes
        );
    }
}

#[test]
fn chunk_size_controls_map_task_count() {
    // The §VI lever: halving the chunk size doubles the mappers.
    let ds = dataset();
    let cluster = Cluster::local(4, 2);
    let d64 = dfs_with_chunks(&cluster, &ds, 64 * 1024);
    let d32 = dfs_with_chunks(&cluster, &ds, 32 * 1024);
    let n64 = d64.num_blocks("d").unwrap();
    let n32 = d32.num_blocks("d").unwrap();
    assert!(
        (n32 as f64 / n64 as f64 - 2.0).abs() < 0.2,
        "{n32} vs {n64} chunks"
    );
}
