//! Acceptance suite for the cross-run trace archive: Chrome trace
//! export, resume-stitched telemetry, and the perf-diff root-cause
//! engine — all exercised against the real `gepeto` binary.
//!
//! - A durable k-means run is SIGKILLed mid-flight and resumed; the
//!   resumed run's `--trace-out` export must validate structurally and
//!   show both attempts as distinct lanes of one timeline, and the
//!   stitched archive's flamegraph self-times must telescope to the
//!   stitched critical-path wall.
//! - A clean and a slow-disk (`--io-faults slow=...`) run of the same
//!   spilling workload are diffed; the top-ranked cause must be the
//!   storage-stall counter, naming the IO-bound shuffle/spill path.

use gepeto_telemetry::json::Json;
use gepeto_telemetry::Event;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const GEPETO: &str = env!("CARGO_BIN_EXE_gepeto");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gepeto-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn run(argv: &[String]) -> Output {
    Command::new(GEPETO)
        .args(argv)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn gepeto")
}

fn spawn(argv: &[String]) -> Child {
    Command::new(GEPETO)
        .args(argv)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gepeto")
}

/// Polls the run journal until it holds at least `n` lines of `kind`.
fn wait_for_entries(run_dir: &Path, kind: &str, n: usize, deadline: Duration) -> bool {
    let journal = run_dir.join("journal.log");
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        let count = std::fs::read_to_string(&journal)
            .unwrap_or_default()
            .lines()
            .filter(|l| l.split(' ').nth(1) == Some(kind))
            .count();
        if count >= n {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Parses a `--metrics-out` JSONL stream back into events.
fn load_jsonl(path: &Path) -> Vec<Event> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            gepeto_telemetry::archive::event_from_json(&v)
                .unwrap_or_else(|| panic!("not an event: {line}"))
        })
        .collect()
}

/// Sum of the per-stack self-times in a folded flamegraph file.
fn folded_total_us(folded: &str) -> u64 {
    folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

#[test]
fn sigkilled_run_exports_one_stitched_validated_trace() {
    let dir = scratch("stitch");
    let trace_path = dir.join("trace.json");
    let argv: Vec<String> = [
        "kmeans",
        "--users",
        "20",
        "--scale",
        "0.01",
        "--k",
        "5",
        "--max-iter",
        "40",
        "--delta",
        "0",
        "--memory-budget",
        "1",
        "--trace-out",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        trace_path.display().to_string(),
        "--run-dir".to_string(),
        dir.display().to_string(),
    ])
    .collect();

    // Kill the run once the journal proves real progress, far from
    // done, and the archive writer has flushed events to the segment
    // (it flushes on a cadence, so progress alone is not enough).
    let mut victim = spawn(&argv);
    assert!(
        wait_for_entries(&dir, "checkpoint", 2, Duration::from_secs(60)),
        "victim made no journaled progress to kill"
    );
    let segment = dir.join("telemetry").join("attempt-000.jsonl");
    let flushed = Instant::now();
    while flushed.elapsed() < Duration::from_secs(30) {
        if std::fs::metadata(&segment)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");
    assert!(
        !dir.join("OUTPUT").exists(),
        "victim finished before the kill; raise --max-iter"
    );
    // The journal recorded the attempt's telemetry segment...
    assert!(
        wait_for_entries(&dir, "telemetry", 1, Duration::from_secs(1)),
        "no telemetry segment journaled"
    );
    // ...and the killed attempt left a (possibly torn) segment behind
    // with real events in it.
    let pre_kill = gepeto_telemetry::load_segments(&dir);
    assert_eq!(pre_kill.len(), 1, "killed attempt left no segment");
    assert!(!pre_kill[0].events.is_empty(), "segment is empty");

    // Resume finishes the run and re-exports the trace, stitched.
    let resume = run(&["resume".to_string(), dir.display().to_string()]);
    assert!(
        resume.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resume.stderr)
    );

    // The export is a structurally sound Chrome trace with both
    // attempts on distinct lanes.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace.json written");
    let report = gepeto_bench::trace::validate(&trace_text)
        .unwrap_or_else(|e| panic!("exported trace failed validation: {e}"));
    assert!(report.events > 10, "{report:?}");
    assert!(
        report
            .thread_names
            .iter()
            .any(|t| t.starts_with("attempt 0")),
        "no attempt-0 lane: {:?}",
        report.thread_names
    );
    assert!(
        report
            .thread_names
            .iter()
            .any(|t| t.starts_with("attempt 1")),
        "pre-kill work is not a lane of the stitched trace: {:?}",
        report.thread_names
    );

    // The stitched archive is one coherent span forest: flamegraph
    // self-times telescope to the stitched critical-path wall (1%).
    let segments = gepeto_telemetry::load_segments(&dir);
    assert!(segments.len() >= 2, "expected >= 2 attempts");
    let stitched = gepeto_telemetry::stitch(&segments);
    let folded = gepeto_telemetry::host_folded(&stitched);
    assert!(folded.contains(';'), "no nested frames:\n{folded}");
    let folded_us = folded_total_us(&folded) as f64;
    let critical_us = gepeto_telemetry::CriticalPath::from_events(&stitched).total_us as f64;
    assert!(critical_us > 0.0);
    assert!(
        (folded_us - critical_us).abs() <= 0.01 * critical_us,
        "folded self-time {folded_us} !~ critical-path wall {critical_us}"
    );
    // The stitched wall covers more than the resumed attempt alone —
    // the killed attempt's work is part of the timeline.
    let resumed_only =
        gepeto_telemetry::CriticalPath::from_events(&gepeto_telemetry::stitch(&segments[1..]))
            .total_us as f64;
    assert!(
        critical_us >= resumed_only,
        "stitching lost the pre-kill attempt"
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn diff_blames_the_io_bound_path_on_a_slow_disk_run() {
    let dir = scratch("diff");
    let clean_jsonl = dir.join("clean.jsonl");
    let slow_jsonl = dir.join("slow.jsonl");
    let base_argv = |metrics: &Path| -> Vec<String> {
        [
            "sample",
            "--users",
            "5",
            "--scale",
            "0.01",
            "--memory-budget",
            "1",
            "--metrics-out",
        ]
        .iter()
        .map(ToString::to_string)
        .chain([metrics.display().to_string()])
        .collect()
    };
    let clean = run(&base_argv(&clean_jsonl));
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let mut slow_argv = base_argv(&slow_jsonl);
    // Every spilled MiB costs 2000 virtual seconds of disk time: the
    // shuffle/spill commit path becomes massively IO-bound.
    slow_argv.extend(["--io-faults".to_string(), "slow=2000".to_string()]);
    let slow = run(&slow_argv);
    assert!(
        slow.status.success(),
        "{}",
        String::from_utf8_lossy(&slow.stderr)
    );

    let base = gepeto_telemetry::profile_from_events("clean", &load_jsonl(&clean_jsonl));
    let cand = gepeto_telemetry::profile_from_events("slow-disk", &load_jsonl(&slow_jsonl));
    let stall = cand
        .counters
        .iter()
        .find(|(n, _)| n == "io.stall_ms")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert!(stall > 0, "slow-disk run recorded no storage stall");

    let report = gepeto_telemetry::diff::diff(&base, &cand);
    assert!(
        !report.causes.is_empty(),
        "diff found nothing:\n{}",
        report.render()
    );
    let top = &report.causes[0];
    assert_eq!(top.kind, "stall", "top cause:\n{}", report.render());
    assert_eq!(top.name, "io.stall_ms");
    assert!(
        top.note.contains("shuffle") && top.note.contains("IO-bound"),
        "note does not name the IO-bound phase: {}",
        top.note
    );
    let text = report.render();
    assert!(text.contains("why it got slower"), "{text}");
    // The machine-readable form round-trips as JSON.
    let json = Json::parse(&report.to_json()).expect("diff JSON parses");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("gepeto-perf-diff/1")
    );

    // Self-diff control: a run diffed against itself has no causes.
    let self_diff = gepeto_telemetry::diff::diff(&base, &base);
    assert!(self_diff.render().contains("no significant delta"));

    let _ = std::fs::remove_dir_all(dir);
}
