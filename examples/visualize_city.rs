//! Visualization — GEPETO's first-listed capability: "visualize,
//! sanitize, perform inference attacks and measure the utility".
//!
//! Renders a synthetic city three ways and shows what sanitization does
//! to the picture:
//!
//! 1. `city_raw.svg` — trails + traces + the POIs an attacker extracts;
//! 2. `city_sanitized.svg` — the same city after a 200 m Gaussian mask;
//! 3. ASCII density maps of both, printed side by side.
//!
//! Run with: `cargo run --release --example visualize_city`

use gepeto::prelude::*;
use gepeto::sanitize::{GaussianMask, Sanitizer};
use gepeto::viz::{ascii_density, geojson, SvgMap};

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 10,
        scale: 0.008,
        ..GeneratorConfig::paper()
    })
    .generate();
    let cfg = djcluster::DjConfig::default();

    // Raw map with the attacker's view (inferred homes) drawn on top.
    let pois = attacks::extract_pois_dataset(&dataset, &cfg);
    let markers: Vec<(GeoPoint, String)> = pois
        .iter()
        .filter_map(|(u, ps)| attacks::infer_home(ps).map(|h| (h.center, format!("home {u}"))))
        .collect();
    let mut raw = SvgMap::for_dataset(&dataset, 900);
    raw.add_trails(&dataset)
        .add_dataset(&dataset, 1.5)
        .add_markers(&markers);
    std::fs::write("city_raw.svg", raw.render()).unwrap();

    // Sanitized map: the blur is visible, the markers (re-attacked) gone
    // or displaced.
    let sanitized = GaussianMask {
        sigma_m: 200.0,
        seed: 7,
    }
    .apply(&dataset);
    let pois2 = attacks::extract_pois_dataset(&sanitized, &cfg);
    let markers2: Vec<(GeoPoint, String)> = pois2
        .iter()
        .filter_map(|(u, ps)| attacks::infer_home(ps).map(|h| (h.center, format!("home? {u}"))))
        .collect();
    let mut blurred = SvgMap::for_dataset(&sanitized, 900);
    blurred.add_dataset(&sanitized, 1.5).add_markers(&markers2);
    std::fs::write("city_sanitized.svg", blurred.render()).unwrap();

    // GeoJSON for GIS tools.
    std::fs::write("city_trails.geojson", geojson::dataset_trails(&dataset)).unwrap();

    println!(
        "wrote city_raw.svg ({} home markers), city_sanitized.svg ({} after masking), \
         city_trails.geojson\n",
        markers.len(),
        markers2.len()
    );
    println!("raw density:\n{}", ascii_density(&dataset, 16, 56));
    println!(
        "after 200 m gaussian mask:\n{}",
        ascii_density(&sanitized, 16, 56)
    );
    println!(
        "The attack found {} homes before sanitization and {} after.",
        markers.len(),
        markers2.len()
    );
}
