//! MMC de-anonymization (§VIII): learn a Mobility Markov Chain per known
//! user, then re-identify "anonymous" trails by chain similarity —
//! demonstrating why removing identifiers is not anonymization.
//!
//! Each user's trail is split in time: the first half plays the role of
//! previously leaked labeled data, the second half arrives anonymized.
//!
//! Run with: `cargo run --release --example deanonymization`

use gepeto::attacks::{learn_mmc, mmc::deanonymize};
use gepeto::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 25,
        scale: 0.03,
        ..GeneratorConfig::paper()
    })
    .generate();
    let cfg = djcluster::DjConfig::default();

    let mut gallery = BTreeMap::new();
    let mut targets = Vec::new();
    for trail in dataset.trails() {
        let traces = trail.traces().to_vec();
        if traces.len() < 400 {
            continue;
        }
        let mid = traces.len() / 2;
        let train = Trail::new(trail.user, traces[..mid].to_vec());
        let test = Trail::new(trail.user, traces[mid..].to_vec());
        if let (Some(known), Some(anon)) = (learn_mmc(&train, &cfg), learn_mmc(&test, &cfg)) {
            gallery.insert(trail.user, known);
            targets.push((trail.user, anon));
        }
    }

    println!(
        "gallery: {} known users; attacking {} anonymous trails\n",
        gallery.len(),
        targets.len()
    );
    let mut top1 = 0;
    let mut top3 = 0;
    for (truth, anon) in &targets {
        let ranked = deanonymize(&gallery, anon);
        let rank = ranked
            .iter()
            .position(|(u, _)| u == truth)
            .map(|p| p + 1)
            .unwrap_or(usize::MAX);
        if rank == 1 {
            top1 += 1;
        }
        if rank <= 3 {
            top3 += 1;
        }
        println!(
            "anonymous trail of user {truth:>3}: best match user {:>3} \
             (distance {:>7.1} m) — true rank {rank}",
            ranked[0].0, ranked[0].1
        );
    }
    let n = targets.len().max(1);
    println!(
        "\nre-identification: top-1 {:.0} %, top-3 {:.0} %",
        100.0 * top1 as f64 / n as f64,
        100.0 * top3 as f64 / n as f64
    );
}
