//! The privacy/utility trade-off loop (the toolkit's raison d'être):
//! sanitize → attack → measure, across mechanisms and strengths.
//!
//! Privacy is measured operationally as the POI recall of the attack on
//! the sanitized dataset; utility as mean spatial displacement and trace
//! retention.
//!
//! Run with: `cargo run --release --example privacy_tradeoff`

use gepeto::metrics;
use gepeto::prelude::*;
use gepeto::sanitize::{
    GaussianMask, MixZone, MixZones, Sanitizer, SpatialAggregation, SpatialCloaking,
};

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 15,
        scale: 0.015,
        ..GeneratorConfig::paper()
    })
    .generate();
    let cfg = djcluster::DjConfig::default();
    let reference = attacks::extract_pois_dataset(&dataset, &cfg);

    let center = GeneratorConfig::paper().city_center;
    let mechanisms: Vec<Box<dyn Sanitizer>> = vec![
        Box::new(GaussianMask {
            sigma_m: 25.0,
            seed: 1,
        }),
        Box::new(GaussianMask {
            sigma_m: 100.0,
            seed: 1,
        }),
        Box::new(GaussianMask {
            sigma_m: 400.0,
            seed: 1,
        }),
        Box::new(SpatialAggregation { cell_m: 250.0 }),
        Box::new(SpatialAggregation { cell_m: 1_000.0 }),
        Box::new(SpatialCloaking {
            cell_m: 500.0,
            k: 2,
        }),
        Box::new(MixZones {
            zones: vec![MixZone {
                center,
                radius_m: 2_000.0,
            }],
        }),
    ];

    println!(
        "{:<34} {:>10} {:>14} {:>10}",
        "mechanism", "POI recall", "displacement", "retention"
    );
    for m in &mechanisms {
        let sanitized = m.apply(&dataset);
        let attacked = attacks::extract_pois_dataset(&sanitized, &cfg);
        let empty = Vec::new();
        let (mut recall, mut n) = (0.0, 0usize);
        for (user, ref_pois) in &reference {
            if ref_pois.is_empty() {
                continue;
            }
            recall += metrics::poi_recall(ref_pois, attacked.get(user).unwrap_or(&empty), 150.0);
            n += 1;
        }
        println!(
            "{:<34} {:>9.1}% {:>12.1} m {:>9.1}%",
            m.name(),
            100.0 * recall / n.max(1) as f64,
            metrics::mean_displacement_m(&dataset, &sanitized),
            100.0 * metrics::retention(&dataset, &sanitized),
        );
    }
    println!(
        "\nReading the table: a good mechanism pushes POI recall down \
         (privacy) while keeping displacement low and retention high \
         (utility). Noise must be strong before the attack starves; \
         cloaking trades traces for anonymity; mix zones cut linkability \
         around their zones at modest utility cost."
    );
}
