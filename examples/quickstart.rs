//! Quickstart: the full GEPETO-on-MapReduce loop in one file.
//!
//! Generates a small synthetic GeoLife-like dataset, stores it in the
//! simulated DFS of a local cluster, then runs the paper's three
//! MapReduced algorithms: down-sampling (§V), k-means (§VI) and
//! DJ-Cluster with its preprocessing pipeline (§VII).
//!
//! Run with: `cargo run --release --example quickstart`

use gepeto::prelude::*;
use gepeto_geo::DistanceMetric;

fn main() {
    // 1. A synthetic dataset calibrated to the paper's GeoLife cut
    //    (178 users / 2 M traces at scale 1.0; here 20 users, ~2 % scale).
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 20,
        scale: 0.02,
        ..GeneratorConfig::paper()
    })
    .generate();
    println!("== dataset ==\n{}\n", DatasetStats::compute(&dataset));

    // 2. Store it in the DFS of a simulated cluster. Chunk size is the
    //    paper's Table III lever; 256 KiB gives a handful of map tasks at
    //    this scale.
    let cluster = Cluster::local(4, 4);
    let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 256 * 1024);
    gepeto::dfs_io::put_dataset(&mut dfs, "geolife", &dataset).unwrap();
    println!(
        "stored as {} chunks of ≤ {} KiB",
        dfs.num_blocks("geolife").unwrap(),
        dfs.block_bytes() / 1024
    );

    // 3. Down-sampling as a map-only job (Figure 2: closest to the upper
    //    limit of each 1-minute window).
    let scfg = sampling::SamplingConfig::new(60, sampling::Technique::ClosestToUpperLimit);
    let (sampled, stats) = sampling::mapreduce_sample(&cluster, &dfs, "geolife", &scfg).unwrap();
    println!(
        "\n== sampling ==\n{} -> {} traces in {} map tasks ({:?} real)",
        dataset.num_traces(),
        sampled.num_traces(),
        stats.map_tasks,
        stats.real_elapsed
    );

    // 4. MapReduce k-means: one job per iteration (Figure 4).
    let kcfg = kmeans::KMeansConfig {
        k: 8,
        convergence_delta: 1e-6,
        max_iterations: 40,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    let km = kmeans::mapreduce_kmeans(&cluster, &dfs, "geolife", &kcfg).unwrap();
    println!(
        "\n== k-means ==\nk={} converged={} after {} iterations",
        kcfg.k, km.converged, km.iterations
    );
    for (i, c) in km.centroids.iter().take(3).enumerate() {
        println!("  centroid {i}: ({:.5}, {:.5})", c.lat, c.lon);
    }

    // 5. DJ-Cluster: preprocessing pipeline (Figure 5) + clustering with
    //    an R-tree built by MapReduce (Figure 6).
    gepeto::dfs_io::put_dataset(&mut dfs, "sampled", &sampled).unwrap();
    let djcfg = djcluster::DjConfig::default();
    let rtree_cfg = gepeto::rtree_build::RTreeBuildConfig::default();
    let (clustering, pre, _) = djcluster::mapreduce_djcluster_full(
        &cluster,
        &mut dfs,
        "sampled",
        &djcfg,
        Some(&rtree_cfg),
    )
    .unwrap();
    println!(
        "\n== DJ-Cluster ==\npreprocessing: {} -> {} -> {} traces",
        pre.input, pre.after_speed_filter, pre.after_dedup
    );
    println!(
        "{} clusters (candidate POIs), {} noise traces",
        clustering.clusters.len(),
        clustering.noise
    );
}
