//! Cluster-scalability study: the same k-means iteration replayed on
//! virtual clusters of growing size — the "distribution and
//! parallelization" motivation of §IV made visible.
//!
//! Tasks really execute on host threads; the per-task measured times are
//! then scheduled onto 1–16 virtual worker nodes (Parapluie-class) to
//! show how the simulated iteration time scales, and what chunk size does
//! to it (the paper's Table III lever).
//!
//! Run with: `cargo run --release --example cluster_scalability`

use gepeto::prelude::*;
use gepeto_geo::DistanceMetric;
use gepeto_mapred::{SimParams, Topology};

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 40,
        scale: 0.05,
        ..GeneratorConfig::paper()
    })
    .generate();
    println!(
        "dataset: {} traces (~{:.1} MB as PLT)\n",
        dataset.num_traces(),
        dataset.approx_plt_bytes() as f64 / 1e6
    );

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>20}",
        "nodes", "chunk", "map tasks", "sim iter", "locality d/r/r"
    );
    for &nodes in &[1usize, 2, 5, 10, 16] {
        for &chunk_kb in &[64usize, 256] {
            // 4 slots per node so the task count exceeds the cluster's
            // capacity at small sizes — the regime where adding nodes pays.
            let cluster = Cluster {
                topology: Topology::new(nodes, 2.min(nodes), 4),
                sim: SimParams::parapluie(),
                failures: gepeto_mapred::FailurePlan::none(),
                chaos: gepeto_mapred::ChaosPlan::none(),
            };
            let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, chunk_kb * 1024);
            gepeto::dfs_io::put_dataset(&mut dfs, "pts", &dataset).unwrap();
            let kcfg = kmeans::KMeansConfig {
                k: 11,
                use_combiner: true,
                ..kmeans::KMeansConfig::paper(DistanceMetric::Haversine)
            };
            let centroids = kmeans::initial_centroids(
                &dataset.iter_traces().map(|t| t.point).collect::<Vec<_>>(),
                kcfg.k,
                kcfg.seed,
            );
            let (_, stats) =
                kmeans::mapreduce_iteration(&cluster, &dfs, "pts", &centroids, &kcfg).unwrap();
            println!(
                "{nodes:>6} {:>8}KB {:>12} {:>10.1} s {:>14}/{}/{}",
                chunk_kb,
                stats.map_tasks,
                stats.sim.makespan_s,
                stats.sim.data_local,
                stats.sim.rack_local,
                stats.sim.remote
            );
        }
    }
    println!(
        "\nMore nodes shorten the simulated iteration until the task count \
         stops covering the slots; smaller chunks create more, shorter map \
         tasks, which schedule better — the §VI observation that \"a \
         smaller chunk size leads to a larger number of chunks … a higher \
         number of mappers working in parallel will improve the \
         computational time\"."
    );
}
