//! Chaos-recovery study: the same k-means run replayed under 0, 1 and 2
//! scripted datanode crashes — the virtual makespan absorbs the recovery
//! work (killed attempts, re-executed maps, failed-over replica reads)
//! while the centroids stay bit-identical, because host results are
//! computed independently of the virtual schedule.
//!
//! Run with: `cargo run --release --example chaos_recovery`

use gepeto::prelude::*;
use gepeto_geo::DistanceMetric;
use gepeto_mapred::{ChaosPlan, SimParams, Topology};

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 12,
        scale: 0.01,
        ..GeneratorConfig::paper()
    })
    .generate();
    let cfg = kmeans::KMeansConfig {
        k: 8,
        convergence_delta: 1e-6,
        max_iterations: 12,
        ..kmeans::KMeansConfig::paper(DistanceMetric::SquaredEuclidean)
    };
    println!(
        "dataset: {} traces | k-means k={} on a 5-node virtual cluster\n",
        dataset.num_traces(),
        cfg.k
    );

    // Crash times sit inside the first iteration's map waves, so the
    // dying nodes take completed map outputs with them (forcing
    // re-execution) and stay dark for every later iteration (forcing
    // replica failover on each read of their chunks).
    let scenarios: [(&str, ChaosPlan); 3] = [
        ("0 crashes", ChaosPlan::none()),
        (
            "1 crash   (node 0 @ 2 s)",
            ChaosPlan::none().crash_node(0, 2.0),
        ),
        (
            "2 crashes (node 0 @ 2 s, node 1 @ 3.5 s)",
            ChaosPlan::none().crash_node(0, 2.0).crash_node(1, 3.5),
        ),
    ];

    let mut baseline: Option<(f64, Vec<(u64, u64)>)> = None;
    println!(
        "{:<42} {:>10} {:>9} {:>8} {:>9} {:>9}",
        "scenario", "makespan", "overhead", "re-exec", "failover", "killed"
    );
    for (label, chaos) in scenarios {
        // Parapluie-class task costs on a *tight* cluster — 5 nodes × 2
        // slots over 2 racks — so losing a node visibly stretches the
        // schedule; no straggler noise, the comparison should show
        // recovery cost, not sampling jitter.
        let mut cluster = Cluster::parapluie().with_chaos(chaos);
        cluster.topology = Topology::new(5, 2, 2);
        cluster.sim = SimParams {
            straggler_prob: 0.0,
            ..SimParams::parapluie()
        };
        let mut dfs = gepeto::dfs_io::trace_dfs(&cluster, 32 * 1024);
        gepeto::dfs_io::put_dataset(&mut dfs, "pts", &dataset).unwrap();
        let result = kmeans::mapreduce_kmeans(&cluster, &dfs, "pts", &cfg).unwrap();
        let makespan: f64 = result
            .per_iteration
            .iter()
            .map(|i| i.job.sim.makespan_s)
            .sum();
        let sum = |f: fn(&gepeto_mapred::JobStats) -> u64| -> u64 {
            result.per_iteration.iter().map(|i| f(&i.job)).sum()
        };
        let bits: Vec<(u64, u64)> = result
            .centroids
            .iter()
            .map(|c| (c.lat.to_bits(), c.lon.to_bits()))
            .collect();
        let overhead = match &baseline {
            None => {
                baseline = Some((makespan, bits));
                "—".to_string()
            }
            Some((base_s, base_bits)) => {
                assert_eq!(*base_bits, bits, "recovery must never change an output bit");
                format!("+{:.1} %", 100.0 * (makespan - base_s) / base_s)
            }
        };
        println!(
            "{label:<42} {makespan:>8.1} s {overhead:>9} {:>8} {:>9} {:>9}",
            sum(|j| j.reexecuted_maps),
            sum(|j| j.failed_over_reads),
            result
                .per_iteration
                .iter()
                .map(|i| i.job.sim.crash_killed_attempts)
                .sum::<usize>(),
        );
    }
    println!(
        "\nEvery crash scenario converged to bit-identical centroids: the \
         jobtracker re-executes the dead node's map outputs on survivors \
         and the DFS client fails over to living replicas, so failures \
         cost only virtual time — never correctness."
    );
}
