//! POI extraction — the paper's canonical inference attack: "the
//! clustering algorithms that we have implemented can be used primarily
//! to extract the POIs of an individual from his trail of mobility
//! traces" (§VIII).
//!
//! For each user: preprocess the trail (drop moving traces, dedup),
//! DJ-Cluster the stationary remainder, then read off home and work.
//!
//! Run with: `cargo run --release --example poi_extraction`

use gepeto::prelude::*;

fn main() {
    let dataset = SyntheticGeoLife::new(GeneratorConfig {
        users: 12,
        scale: 0.015,
        ..GeneratorConfig::paper()
    })
    .generate();

    let cfg = djcluster::DjConfig {
        radius_m: 60.0,
        min_pts: 4,
        ..djcluster::DjConfig::default()
    };

    println!("user | POIs | home (lat, lon)      | night dwell | visits");
    println!("-----+------+----------------------+-------------+-------");
    let per_user = attacks::extract_pois_dataset(&dataset, &cfg);
    let mut homes = 0;
    for (user, pois) in &per_user {
        match attacks::infer_home(pois) {
            Some(home) => {
                homes += 1;
                println!(
                    "{user:>4} | {:>4} | ({:.5}, {:.5}) | {:>9} s | {:>5}",
                    pois.len(),
                    home.center.lat,
                    home.center.lon,
                    home.night_secs,
                    home.visits
                );
                if let Some(work) = attacks::infer_work(pois, home) {
                    println!(
                        "     |      |  work ≈ ({:.5}, {:.5}), {} visits",
                        work.center.lat, work.center.lon, work.visits
                    );
                }
            }
            None => println!("{user:>4} |    0 | (no POI found)"),
        }
    }
    println!(
        "\nThe attack recovered a home location for {homes}/{} users from \
         nothing but (pseudonymous) mobility traces — the privacy threat \
         GEPETO exists to quantify.",
        dataset.num_users()
    );
}
